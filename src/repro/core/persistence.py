"""Model checkpointing: save/load STGNN-DJD (and any Module) to ``.npz``.

The paper's deployment story (Sec. VII-I) is train-offline,
predict-online; checkpoints are the artifact that crosses that
boundary. A checkpoint stores the parameter arrays plus the model
configuration, so :func:`load_stgnn` can rebuild the exact model without
the original dataset.

Three failure modes are engineered against:

* **Torn writes** — every writer goes through :func:`_atomic_savez`:
  the bytes land in a same-directory temp file that is ``os.replace``\\ d
  into place, so a reader (e.g. the serving hot-reload watcher) never
  observes a half-written checkpoint from *this* writer.
* **Corrupt files** — truncated, bit-flipped or otherwise unreadable
  checkpoints (from non-atomic third-party writers, disk faults, or
  partial copies) raise :class:`CheckpointCorruptError` instead of
  surfacing a raw ``zipfile``/``zlib`` traceback — and never load
  garbage weights, because the failure is detected before any array is
  handed out.
* **Schema drift** — checkpoints carry a **schema version**
  (:data:`SCHEMA_VERSION`); a reader rejects any other version with
  :class:`CheckpointSchemaError`. Version-less checkpoints written
  before the field existed still load (legacy format, version 1).

Beyond model checkpoints, this module also persists **training
snapshots** (:func:`save_training_snapshot` /
:func:`load_training_snapshot`): the full fit-loop state — parameters,
Adam moments, RNG state, per-epoch history, early-stopping bookkeeping —
captured at an epoch boundary, so an interrupted run resumes
bit-for-bit (see ``TrainingConfig.snapshot_path``).
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import zipfile
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.core.model import STGNNDJD, STGNNDJDConfig
from repro.nn import Module

_CONFIG_KEY = "__config_json__"
_SCHEMA_KEY = "__schema_version__"
_QUALITY_KEY = "__quality_baseline__"

#: Current checkpoint schema. Bump when the on-disk layout changes in a
#: way old readers cannot interpret; readers reject any other version.
SCHEMA_VERSION = 1

#: Current training-snapshot schema (independent of the checkpoint one).
SNAPSHOT_VERSION = 1

_META_KEYS = (_CONFIG_KEY, _SCHEMA_KEY, _QUALITY_KEY)

#: Exceptions that mean "the file is not a readable npz archive". numpy
#: raises ValueError for non-zip garbage, zipfile/zlib surface
#: BadZipFile/CRC errors for truncation and bit flips (sometimes lazily,
#: at member-read time), and very short files can hit bare EOFError.
_CORRUPTION_ERRORS = (
    zipfile.BadZipFile,
    zipfile.LargeZipFile,
    zlib.error,
    ValueError,
    EOFError,
    OSError,
)


class CheckpointError(RuntimeError):
    """Base class for checkpoint read failures."""


class CheckpointSchemaError(CheckpointError):
    """A checkpoint's schema version does not match this reader."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file is truncated, bit-flipped, or not an archive."""


@contextlib.contextmanager
def _open_checkpoint(path: str | Path) -> Iterator[np.lib.npyio.NpzFile]:
    """Open an ``.npz`` for reading, normalising corruption failures.

    ``np.load`` reads archive members lazily, so corruption can surface
    either at open (broken central directory) or at member access (CRC
    mismatch from a bit flip); both paths funnel into
    :class:`CheckpointCorruptError`. A missing file stays a plain
    ``FileNotFoundError`` — absence is not corruption.
    """
    try:
        bundle = np.load(Path(path))
    except FileNotFoundError:
        raise
    except _CORRUPTION_ERRORS as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path} is corrupt or truncated: {exc}"
        ) from exc
    try:
        with bundle:
            yield bundle
    except CheckpointError:
        raise
    except _CORRUPTION_ERRORS as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path} is corrupt or truncated: {exc}"
        ) from exc


def _atomic_savez(path: str | Path, arrays: dict[str, np.ndarray]) -> None:
    """Write an ``.npz`` atomically: temp file + rename, fsync'd.

    The temp file lives next to the target so ``os.replace`` stays a
    same-filesystem atomic rename; a concurrent reader sees either the
    old complete file or the new complete file, never a prefix.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        with contextlib.suppress(FileNotFoundError):
            os.unlink(tmp)


def _check_schema(bundle, path: str | Path) -> None:
    if _SCHEMA_KEY not in bundle.files:
        return  # legacy version-less checkpoint: accepted as version 1
    version = int(bundle[_SCHEMA_KEY])
    if version != SCHEMA_VERSION:
        raise CheckpointSchemaError(
            f"checkpoint {path} has schema version {version}, but this "
            f"reader supports version {SCHEMA_VERSION}; refusing to load"
        )


def checkpoint_schema_version(path: str | Path) -> int | None:
    """The schema version stored in a checkpoint (None for legacy files)."""
    with _open_checkpoint(path) as bundle:
        if _SCHEMA_KEY not in bundle.files:
            return None
        return int(bundle[_SCHEMA_KEY])


def save_checkpoint(
    model: Module, path: str | Path, quality_baseline=None
) -> None:
    """Atomically write a module's parameters (and config) to ``.npz``.

    ``quality_baseline`` (a :class:`repro.obs.quality.QualityBaseline`)
    embeds the training-time error level so a serving process loading
    this checkpoint can monitor drift against it out of the box.
    """
    path = Path(path)
    arrays = dict(model.state_dict())
    config = getattr(model, "config", None)
    if dataclasses.is_dataclass(config):
        config_json = json.dumps(dataclasses.asdict(config))
        arrays[_CONFIG_KEY] = np.frombuffer(
            config_json.encode("utf-8"), dtype=np.uint8
        ).copy()
    if quality_baseline is not None:
        arrays[_QUALITY_KEY] = np.frombuffer(
            quality_baseline.to_json().encode("utf-8"), dtype=np.uint8
        ).copy()
    arrays[_SCHEMA_KEY] = np.asarray(SCHEMA_VERSION, dtype=np.int64)
    _atomic_savez(path, arrays)


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    """Read the raw parameter dict from a checkpoint."""
    with _open_checkpoint(path) as bundle:
        _check_schema(bundle, path)
        return {
            name: bundle[name].copy()
            for name in bundle.files
            if name not in _META_KEYS
        }


def load_config(path: str | Path) -> STGNNDJDConfig:
    """Read the model configuration stored in a checkpoint."""
    with _open_checkpoint(path) as bundle:
        _check_schema(bundle, path)
        if _CONFIG_KEY not in bundle.files:
            raise KeyError(f"checkpoint {path} carries no model config")
        raw = bytes(bundle[_CONFIG_KEY]).decode("utf-8")
    return STGNNDJDConfig(**json.loads(raw))


def load_quality_baseline(path: str | Path):
    """The training-time quality baseline embedded in a checkpoint.

    Returns a :class:`repro.obs.quality.QualityBaseline` or ``None``
    when the checkpoint predates (or was saved without) one.
    """
    from repro.obs.quality import QualityBaseline

    with _open_checkpoint(path) as bundle:
        _check_schema(bundle, path)
        if _QUALITY_KEY not in bundle.files:
            return None
        raw = bytes(bundle[_QUALITY_KEY]).decode("utf-8")
    return QualityBaseline.from_json(raw)


def load_stgnn(path: str | Path) -> STGNNDJD:
    """Rebuild a saved STGNN-DJD: config + parameters, ready for eval."""
    model = STGNNDJD(load_config(path))
    model.load_state_dict(load_state(path))
    model.eval()
    return model


# ----------------------------------------------------------------------
# Training snapshots (checkpoint + optimizer + RNG + loop state)
# ----------------------------------------------------------------------
_SNAP_META_KEY = "__snapshot_meta__"
_SNAP_SCHEMA_KEY = "__snapshot_version__"
_MODEL_PREFIX = "model/"
_ADAM_M_PREFIX = "adam.m/"
_ADAM_V_PREFIX = "adam.v/"
_BEST_PREFIX = "best/"


@dataclasses.dataclass(slots=True)
class TrainingSnapshot:
    """Everything the fit loop needs to continue bit-for-bit.

    Captured at an epoch boundary: ``epoch`` is the index of the last
    *completed* epoch; resuming re-enters the loop at ``epoch + 1`` with
    the RNG exactly where the boundary left it, so the continued run is
    bitwise identical to one that was never interrupted.
    """

    epoch: int
    model_state: dict[str, np.ndarray]
    adam_step_count: int
    adam_m: dict[str, np.ndarray]
    adam_v: dict[str, np.ndarray]
    rng_state: dict
    train_loss: list[float]
    val_loss: list[float]
    best_epoch: int
    best_val: float
    bad_epochs: int
    best_state: dict[str, np.ndarray] | None
    fingerprint: str  # model class + config, for resume validation


def training_fingerprint(model: Module) -> str:
    """A stable identity for "is this snapshot from the same training?"."""
    config = getattr(model, "config", None)
    config_json = (
        json.dumps(dataclasses.asdict(config), sort_keys=True)
        if dataclasses.is_dataclass(config)
        else "{}"
    )
    return f"{type(model).__name__}:{config_json}"


def save_training_snapshot(path: str | Path, snapshot: TrainingSnapshot) -> None:
    """Atomically persist a :class:`TrainingSnapshot` to ``.npz``."""
    arrays: dict[str, np.ndarray] = {}
    for name, value in snapshot.model_state.items():
        arrays[_MODEL_PREFIX + name] = value
    for name, value in snapshot.adam_m.items():
        arrays[_ADAM_M_PREFIX + name] = value
    for name, value in snapshot.adam_v.items():
        arrays[_ADAM_V_PREFIX + name] = value
    for name, value in (snapshot.best_state or {}).items():
        arrays[_BEST_PREFIX + name] = value
    # json round-trips Python floats through repr, so history losses and
    # best_val come back bitwise identical; RNG state ints are exact.
    meta = json.dumps({
        "epoch": snapshot.epoch,
        "adam_step_count": snapshot.adam_step_count,
        "rng_state": snapshot.rng_state,
        "train_loss": snapshot.train_loss,
        "val_loss": snapshot.val_loss,
        "best_epoch": snapshot.best_epoch,
        "best_val": snapshot.best_val,
        "bad_epochs": snapshot.bad_epochs,
        "has_best_state": snapshot.best_state is not None,
        "fingerprint": snapshot.fingerprint,
    })
    arrays[_SNAP_META_KEY] = np.frombuffer(
        meta.encode("utf-8"), dtype=np.uint8
    ).copy()
    arrays[_SNAP_SCHEMA_KEY] = np.asarray(SNAPSHOT_VERSION, dtype=np.int64)
    _atomic_savez(path, arrays)


def load_training_snapshot(path: str | Path) -> TrainingSnapshot:
    """Read a training snapshot; corrupt or alien files fail loudly."""
    with _open_checkpoint(path) as bundle:
        files = set(bundle.files)
        if _SNAP_META_KEY not in files or _SNAP_SCHEMA_KEY not in files:
            raise CheckpointSchemaError(
                f"{path} is not a training snapshot (missing metadata)"
            )
        version = int(bundle[_SNAP_SCHEMA_KEY])
        if version != SNAPSHOT_VERSION:
            raise CheckpointSchemaError(
                f"training snapshot {path} has version {version}, but this "
                f"reader supports version {SNAPSHOT_VERSION}"
            )
        meta = json.loads(bytes(bundle[_SNAP_META_KEY]).decode("utf-8"))

        def strip(prefix: str) -> dict[str, np.ndarray]:
            return {
                name[len(prefix):]: bundle[name].copy()
                for name in files
                if name.startswith(prefix)
            }

        best_state = strip(_BEST_PREFIX) if meta["has_best_state"] else None
        return TrainingSnapshot(
            epoch=meta["epoch"],
            model_state=strip(_MODEL_PREFIX),
            adam_step_count=meta["adam_step_count"],
            adam_m=strip(_ADAM_M_PREFIX),
            adam_v=strip(_ADAM_V_PREFIX),
            rng_state=meta["rng_state"],
            train_loss=meta["train_loss"],
            val_loss=meta["val_loss"],
            best_epoch=meta["best_epoch"],
            best_val=meta["best_val"],
            bad_epochs=meta["bad_epochs"],
            best_state=best_state,
            fingerprint=meta["fingerprint"],
        )

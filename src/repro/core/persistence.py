"""Model checkpointing: save/load STGNN-DJD (and any Module) to ``.npz``.

The paper's deployment story (Sec. VII-I) is train-offline,
predict-online; checkpoints are the artifact that crosses that
boundary. A checkpoint stores the parameter arrays plus the model
configuration, so :func:`load_stgnn` can rebuild the exact model without
the original dataset.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.core.model import STGNNDJD, STGNNDJDConfig
from repro.nn import Module

_CONFIG_KEY = "__config_json__"


def save_checkpoint(model: Module, path: str | Path) -> None:
    """Write a module's parameters (and config, if present) to ``.npz``."""
    path = Path(path)
    arrays = dict(model.state_dict())
    config = getattr(model, "config", None)
    if dataclasses.is_dataclass(config):
        config_json = json.dumps(dataclasses.asdict(config))
        arrays[_CONFIG_KEY] = np.frombuffer(
            config_json.encode("utf-8"), dtype=np.uint8
        ).copy()
    np.savez(path, **arrays)


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    """Read the raw parameter dict from a checkpoint."""
    with np.load(Path(path)) as bundle:
        return {
            name: bundle[name].copy()
            for name in bundle.files
            if name != _CONFIG_KEY
        }


def load_config(path: str | Path) -> STGNNDJDConfig:
    """Read the model configuration stored in a checkpoint."""
    with np.load(Path(path)) as bundle:
        if _CONFIG_KEY not in bundle.files:
            raise KeyError(f"checkpoint {path} carries no model config")
        raw = bytes(bundle[_CONFIG_KEY]).decode("utf-8")
    return STGNNDJDConfig(**json.loads(raw))


def load_stgnn(path: str | Path) -> STGNNDJD:
    """Rebuild a saved STGNN-DJD: config + parameters, ready for eval."""
    model = STGNNDJD(load_config(path))
    model.load_state_dict(load_state(path))
    model.eval()
    return model

"""Model checkpointing: save/load STGNN-DJD (and any Module) to ``.npz``.

The paper's deployment story (Sec. VII-I) is train-offline,
predict-online; checkpoints are the artifact that crosses that
boundary. A checkpoint stores the parameter arrays plus the model
configuration, so :func:`load_stgnn` can rebuild the exact model without
the original dataset.

Checkpoints carry a **schema version** (:data:`SCHEMA_VERSION`) so a
live server hot-reloading a checkpoint from a newer or incompatible
writer fails loudly with :class:`CheckpointSchemaError` instead of
loading garbage weights. Version-less checkpoints written before the
field existed still load (legacy format, treated as version 1).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.core.model import STGNNDJD, STGNNDJDConfig
from repro.nn import Module

_CONFIG_KEY = "__config_json__"
_SCHEMA_KEY = "__schema_version__"

#: Current checkpoint schema. Bump when the on-disk layout changes in a
#: way old readers cannot interpret; readers reject any other version.
SCHEMA_VERSION = 1

_META_KEYS = (_CONFIG_KEY, _SCHEMA_KEY)


class CheckpointSchemaError(RuntimeError):
    """A checkpoint's schema version does not match this reader."""


def _check_schema(bundle, path: str | Path) -> None:
    if _SCHEMA_KEY not in bundle.files:
        return  # legacy version-less checkpoint: accepted as version 1
    version = int(bundle[_SCHEMA_KEY])
    if version != SCHEMA_VERSION:
        raise CheckpointSchemaError(
            f"checkpoint {path} has schema version {version}, but this "
            f"reader supports version {SCHEMA_VERSION}; refusing to load"
        )


def checkpoint_schema_version(path: str | Path) -> int | None:
    """The schema version stored in a checkpoint (None for legacy files)."""
    with np.load(Path(path)) as bundle:
        if _SCHEMA_KEY not in bundle.files:
            return None
        return int(bundle[_SCHEMA_KEY])


def save_checkpoint(model: Module, path: str | Path) -> None:
    """Write a module's parameters (and config, if present) to ``.npz``."""
    path = Path(path)
    arrays = dict(model.state_dict())
    config = getattr(model, "config", None)
    if dataclasses.is_dataclass(config):
        config_json = json.dumps(dataclasses.asdict(config))
        arrays[_CONFIG_KEY] = np.frombuffer(
            config_json.encode("utf-8"), dtype=np.uint8
        ).copy()
    arrays[_SCHEMA_KEY] = np.asarray(SCHEMA_VERSION, dtype=np.int64)
    np.savez(path, **arrays)


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    """Read the raw parameter dict from a checkpoint."""
    with np.load(Path(path)) as bundle:
        _check_schema(bundle, path)
        return {
            name: bundle[name].copy()
            for name in bundle.files
            if name not in _META_KEYS
        }


def load_config(path: str | Path) -> STGNNDJDConfig:
    """Read the model configuration stored in a checkpoint."""
    with np.load(Path(path)) as bundle:
        _check_schema(bundle, path)
        if _CONFIG_KEY not in bundle.files:
            raise KeyError(f"checkpoint {path} carries no model config")
        raw = bytes(bundle[_CONFIG_KEY]).decode("utf-8")
    return STGNNDJDConfig(**json.loads(raw))


def load_stgnn(path: str | Path) -> STGNNDJD:
    """Rebuild a saved STGNN-DJD: config + parameters, ready for eval."""
    model = STGNNDJD(load_config(path))
    model.load_state_dict(load_state(path))
    model.eval()
    return model

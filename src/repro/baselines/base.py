"""Shared machinery for the deep baselines.

Every deep baseline consumes the same :class:`~repro.data.FlowSample`
that STGNN-DJD does and produces normalised ``(demand, supply)``
predictions, so the one :class:`~repro.core.Trainer` fits them all.
What differs is the *view* of the sample each architecture takes:

* per-station **recent history** — demand/supply of the last ``h`` slots
  (derived from the short flow window by row sums);
* per-station **daily history** — demand/supply at the same slot over
  the last ``d`` days (from the long window);
* a **spatial graph** over stations, built from distance, correlation or
  aggregate flow depending on the baseline.

Inputs are scaled by the dataset's training demand/supply maxima so the
networks see O(1) activations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import backend
from repro.data.dataset import BikeShareDataset, FlowSample
from repro.nn import Module
from repro.tensor import Tensor


@dataclass(frozen=True, slots=True)
class BaselineDims:
    """Shape/scale information deep baselines need about a dataset."""

    num_stations: int
    history: int  # recent slots consumed (<= dataset short_window)
    daily: int  # daily lags consumed (<= dataset long_days)
    input_scale: float  # max training demand/supply, for input scaling

    def __post_init__(self) -> None:
        if self.num_stations < 2:
            raise ValueError("need at least 2 stations")
        if self.history < 1 or self.daily < 0:
            raise ValueError("history must be >= 1 and daily >= 0")
        if self.input_scale <= 0:
            raise ValueError("input_scale must be positive")

    @classmethod
    def from_dataset(
        cls, dataset: BikeShareDataset, history: int | None = None, daily: int | None = None
    ) -> "BaselineDims":
        history = min(history or 24, dataset.config.short_window)
        daily = min(daily if daily is not None else dataset.config.long_days,
                    dataset.config.long_days)
        scale = max(
            dataset.demand_normalizer.maximum or 1.0,
            dataset.supply_normalizer.maximum or 1.0,
            1.0,
        )
        return cls(dataset.num_stations, history, daily, scale)


class DeepBaseline(Module):
    """Base class: sample views + the Trainer-compatible interface."""

    def __init__(self, dims: BaselineDims) -> None:
        super().__init__()
        self.dims = dims

    # ------------------------------------------------------------------
    # Sample views (plain numpy; gradients start at the first layer)
    # ------------------------------------------------------------------
    def recent_history(self, sample: FlowSample) -> np.ndarray:
        """Scaled per-station series, shape ``(history, n, 2)``.

        Channel 0 is demand (outflow row sums), channel 1 supply.
        """
        h = self.dims.history
        demand = sample.short_outflow[-h:].sum(axis=2)
        supply = sample.short_inflow[-h:].sum(axis=2)
        scaled = np.stack([demand, supply], axis=2) / self.dims.input_scale
        # Backend dtype (not hardcoded float64) so a float32 inference
        # scope keeps the whole baseline forward in single precision.
        return scaled.astype(backend.default_dtype(), copy=False)

    def daily_history(self, sample: FlowSample) -> np.ndarray:
        """Scaled same-slot-of-day series, shape ``(daily, n, 2)``."""
        d = self.dims.daily
        demand = sample.long_outflow[-d:].sum(axis=2)
        supply = sample.long_inflow[-d:].sum(axis=2)
        scaled = np.stack([demand, supply], axis=2) / self.dims.input_scale
        return scaled.astype(backend.default_dtype(), copy=False)

    def station_features(self, sample: FlowSample) -> np.ndarray:
        """Flattened per-station feature vector, shape ``(n, f)``.

        Concatenates recent and daily histories — the common "tabular"
        input of the MLP/GCN-family baselines.
        """
        recent = self.recent_history(sample)  # (h, n, 2)
        parts = [recent.transpose(1, 0, 2).reshape(self.dims.num_stations, -1)]
        if self.dims.daily:
            daily = self.daily_history(sample)
            parts.append(daily.transpose(1, 0, 2).reshape(self.dims.num_stations, -1))
        return np.concatenate(parts, axis=1)

    @property
    def station_feature_width(self) -> int:
        return 2 * (self.dims.history + self.dims.daily)

    def forward(self, sample: FlowSample) -> tuple[Tensor, Tensor]:
        raise NotImplementedError


def normalized_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Symmetrically normalised adjacency with self-loops (Kipf-Welling).

    ``A_hat = D^{-1/2} (A + I) D^{-1/2}`` — the propagation matrix of
    the GCN-family baselines.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    with_loops = adjacency + np.eye(len(adjacency))
    degrees = with_loops.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
    return with_loops * inv_sqrt[:, None] * inv_sqrt[None, :]


def distance_adjacency(
    dataset: BikeShareDataset, sigma_km: float | None = None, threshold: float = 0.1
) -> np.ndarray:
    """Gaussian distance-kernel adjacency (the locality prior).

    ``A_ij = exp(-d_ij^2 / sigma^2)`` thresholded to sparsify — the
    standard construction of the distance-graph baselines (GCNN, MGNN,
    ASTGCN, STSGCN, GBike all start from it).
    """
    distances = dataset.registry.distance_matrix()
    if sigma_km is None:
        off_diag = distances[~np.eye(len(distances), dtype=bool)]
        sigma_km = float(np.median(off_diag)) if off_diag.size else 1.0
    kernel = np.exp(-((distances / max(sigma_km, 1e-9)) ** 2))
    kernel[kernel < threshold] = 0.0
    np.fill_diagonal(kernel, 0.0)
    return kernel


def correlation_adjacency(dataset: BikeShareDataset, threshold: float = 0.3) -> np.ndarray:
    """Demand-pattern correlation adjacency over the training split."""
    train_idx, _, _ = dataset.split_indices()
    series = dataset.demand[: train_idx[-1] + 1]
    centered = series - series.mean(axis=0, keepdims=True)
    stds = centered.std(axis=0)
    stds[stds == 0] = 1.0
    corr = (centered / stds).T @ (centered / stds) / len(series)
    corr = np.clip(corr, -1.0, 1.0)
    adjacency = np.where(corr >= threshold, corr, 0.0)
    np.fill_diagonal(adjacency, 0.0)
    return adjacency


def interaction_adjacency(dataset: BikeShareDataset) -> np.ndarray:
    """Aggregate-flow adjacency over the training split (ride volume)."""
    train_idx, _, _ = dataset.split_indices()
    end = train_idx[-1] + 1
    volume = dataset.outflow[:end].sum(axis=0) + dataset.inflow[:end].sum(axis=0).T
    total = volume.max()
    adjacency = volume / total if total > 0 else volume
    np.fill_diagonal(adjacency, 0.0)
    return adjacency

"""Gradient-boosted regression trees — the XGBoost stand-in.

The xgboost library is unavailable offline, so we implement the same
algorithm family from scratch: CART regression trees greedily grown on
variance reduction, boosted on squared-loss residuals with shrinkage and
feature/row subsampling. Features follow the paper's recipe exactly:
"historical demand and supply at the last k time slots on the same day
and the same time slot in the last d days".

One model is trained per target (demand, supply) over all (time,
station) pairs of the training split, so the trees can exploit shared
structure across stations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import BikeShareDataset


@dataclass(frozen=True, slots=True)
class GBRTConfig:
    """Boosting hyperparameters (small-data defaults)."""

    num_trees: int = 50
    max_depth: int = 4
    min_samples_leaf: int = 8
    learning_rate: float = 0.1
    subsample: float = 0.8
    feature_subsample: float = 0.8
    recent_lags: int = 12  # paper's "last k time slots" feature budget
    daily_lags: int = 3  # paper's "same time slot in the last d days"

    def __post_init__(self) -> None:
        if self.num_trees < 1 or self.max_depth < 1 or self.min_samples_leaf < 1:
            raise ValueError("tree hyperparameters must be positive")
        if not 0 < self.learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 < self.subsample <= 1 or not 0 < self.feature_subsample <= 1:
            raise ValueError("subsample fractions must be in (0, 1]")


class _TreeNode:
    """A node of a CART regression tree (leaf iff ``feature is None``)."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self) -> None:
        self.feature: int | None = None
        self.threshold = 0.0
        self.left: "_TreeNode | None" = None
        self.right: "_TreeNode | None" = None
        self.value = 0.0


class RegressionTree:
    """Depth-limited CART regression tree with exact greedy splits."""

    def __init__(
        self,
        max_depth: int,
        min_samples_leaf: int,
        rng: np.random.Generator,
        feature_subsample: float = 1.0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.feature_subsample = feature_subsample
        self._rng = rng
        self._root: _TreeNode | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RegressionTree":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if len(features) != len(targets):
            raise ValueError("features and targets must align")
        self._root = self._grow(features, targets, depth=0)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("RegressionTree used before fit()")
        features = np.asarray(features, dtype=np.float64)
        out = np.empty(len(features))
        for i, row in enumerate(features):
            node = self._root
            while node.feature is not None:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def _grow(self, features: np.ndarray, targets: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode()
        node.value = float(targets.mean())
        if depth >= self.max_depth or len(targets) < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(features, targets)
        if split is None:
            return node
        feature, threshold = split
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], targets[mask], depth + 1)
        node.right = self._grow(features[~mask], targets[~mask], depth + 1)
        return node

    def _best_split(
        self, features: np.ndarray, targets: np.ndarray
    ) -> tuple[int, float] | None:
        """Exact variance-reduction split over a random feature subset.

        Uses the sorted-prefix-sums trick: for each feature, candidate
        thresholds are midpoints between consecutive distinct values and
        the SSE of both halves comes from cumulative sums — O(m log m)
        per feature rather than O(m^2).
        """
        num_features = features.shape[1]
        count = max(1, int(num_features * self.feature_subsample))
        candidates = self._rng.choice(num_features, size=count, replace=False)

        best_gain, best = 0.0, None
        total_sum = targets.sum()
        total_sq = float(targets @ targets)
        m = len(targets)
        parent_sse = total_sq - total_sum**2 / m
        for feature in candidates:
            order = np.argsort(features[:, feature], kind="stable")
            sorted_x = features[order, feature]
            sorted_y = targets[order]
            prefix_sum = np.cumsum(sorted_y)
            prefix_sq = np.cumsum(sorted_y**2)
            # Valid split positions: both sides >= min_samples_leaf and
            # the threshold separates distinct feature values.
            left_counts = np.arange(1, m)
            valid = (
                (left_counts >= self.min_samples_leaf)
                & (m - left_counts >= self.min_samples_leaf)
                & (sorted_x[:-1] < sorted_x[1:])
            )
            if not valid.any():
                continue
            left_sum = prefix_sum[:-1]
            left_sq = prefix_sq[:-1]
            left_sse = left_sq - left_sum**2 / left_counts
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            right_sse = right_sq - right_sum**2 / (m - left_counts)
            gains = np.where(valid, parent_sse - left_sse - right_sse, -np.inf)
            idx = int(np.argmax(gains))
            if gains[idx] > best_gain + 1e-12:
                best_gain = float(gains[idx])
                best = (int(feature), float((sorted_x[idx] + sorted_x[idx + 1]) / 2.0))
        return best


class GradientBoostedTrees:
    """Squared-loss gradient boosting over :class:`RegressionTree`."""

    def __init__(self, config: GBRTConfig, seed: int = 0) -> None:
        self.config = config
        self._rng = np.random.default_rng(seed)
        self._trees: list[RegressionTree] = []
        self._base = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostedTrees":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        self._base = float(targets.mean())
        prediction = np.full(len(targets), self._base)
        self._trees = []
        for _ in range(self.config.num_trees):
            residual = targets - prediction
            rows = self._rng.random(len(targets)) < self.config.subsample
            if rows.sum() < 2 * self.config.min_samples_leaf:
                rows = np.ones(len(targets), dtype=bool)
            tree = RegressionTree(
                self.config.max_depth,
                self.config.min_samples_leaf,
                self._rng,
                self.config.feature_subsample,
            ).fit(features[rows], residual[rows])
            self._trees.append(tree)
            prediction += self.config.learning_rate * tree.predict(features)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        prediction = np.full(len(features), self._base)
        for tree in self._trees:
            prediction += self.config.learning_rate * tree.predict(features)
        return prediction


class GBRTBaseline:
    """The paper's XGBoost baseline on the paper's feature recipe."""

    def __init__(
        self, dataset: BikeShareDataset, config: GBRTConfig | None = None, seed: int = 0
    ) -> None:
        self.dataset = dataset
        self.config = config or GBRTConfig()
        self.seed = seed
        self._demand_model: GradientBoostedTrees | None = None
        self._supply_model: GradientBoostedTrees | None = None

    # ------------------------------------------------------------------
    def _features_at(self, t: int) -> np.ndarray:
        """Feature matrix (n, f) for all stations at prediction time t."""
        config = self.config
        spd = self.dataset.slots_per_day
        demand, supply = self.dataset.demand, self.dataset.supply
        columns = []
        for lag in range(1, config.recent_lags + 1):
            columns.append(demand[t - lag])
            columns.append(supply[t - lag])
        for day in range(1, config.daily_lags + 1):
            columns.append(demand[t - day * spd])
            columns.append(supply[t - day * spd])
        columns.append(np.full(self.dataset.num_stations, t % spd, dtype=np.float64))
        return np.stack(columns, axis=1)

    def _min_t(self) -> int:
        return max(self.config.recent_lags, self.config.daily_lags * self.dataset.slots_per_day)

    def fit(self) -> "GBRTBaseline":
        train_idx, _, _ = self.dataset.split_indices()
        usable = train_idx[train_idx >= self._min_t()]
        features = np.concatenate([self._features_at(int(t)) for t in usable])
        demand_targets = np.concatenate([self.dataset.demand[int(t)] for t in usable])
        supply_targets = np.concatenate([self.dataset.supply[int(t)] for t in usable])
        self._demand_model = GradientBoostedTrees(self.config, self.seed).fit(
            features, demand_targets
        )
        self._supply_model = GradientBoostedTrees(self.config, self.seed + 1).fit(
            features, supply_targets
        )
        return self

    def predict(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        if self._demand_model is None or self._supply_model is None:
            raise RuntimeError("GBRTBaseline used before fit()")
        features = self._features_at(t)
        return (
            np.maximum(self._demand_model.predict(features), 0.0),
            np.maximum(self._supply_model.predict(features), 0.0),
        )

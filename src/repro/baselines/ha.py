"""Historical Average (HA) baseline [Froehlich et al., 2009].

Predicts a station's demand/supply at slot ``t`` as the average of its
historical demand/supply at the same slot-of-day over the training days
— the simplest periodic predictor and the paper's weakest baseline.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import BikeShareDataset


class HistoricalAverage:
    """Same-slot-of-day mean over the training split."""

    def __init__(self, dataset: BikeShareDataset) -> None:
        self.dataset = dataset
        self._demand_profile: np.ndarray | None = None  # (spd, n)
        self._supply_profile: np.ndarray | None = None

    def fit(self) -> "HistoricalAverage":
        """Average the training days per slot-of-day."""
        train_idx, _, _ = self.dataset.split_indices()
        spd = self.dataset.slots_per_day
        n = self.dataset.num_stations
        demand_profile = np.zeros((spd, n))
        supply_profile = np.zeros((spd, n))
        counts = np.zeros(spd)
        for t in train_idx:
            slot = t % spd
            demand_profile[slot] += self.dataset.demand[t]
            supply_profile[slot] += self.dataset.supply[t]
            counts[slot] += 1
        counts[counts == 0] = 1.0
        self._demand_profile = demand_profile / counts[:, None]
        self._supply_profile = supply_profile / counts[:, None]
        return self

    def predict(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        if self._demand_profile is None:
            raise RuntimeError("HistoricalAverage used before fit()")
        slot = t % self.dataset.slots_per_day
        return self._demand_profile[slot].copy(), self._supply_profile[slot].copy()

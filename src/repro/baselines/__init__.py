"""Every baseline from the paper's Table I, re-implemented from scratch.

Two families:

* **Classical** predictors with their own ``fit()`` / ``predict(t)``
  (original units): HA, ARIMA, GBRT (the XGBoost stand-in).
* **Deep** models sharing STGNN-DJD's ``forward(sample)`` interface and
  trained by the same :class:`repro.core.Trainer`: MLP, RNN, LSTM,
  GCNN, MGNN, ASTGCN, STSGCN, GBike.

``CLASSICAL_BASELINES`` / ``DEEP_BASELINES`` are name→factory registries
used by the benchmark harness to sweep Table I.
"""

from repro.baselines.ha import HistoricalAverage
from repro.baselines.arima import ArimaBaseline, ArimaModel, ArimaOrder
from repro.baselines.gbrt import (
    GBRTBaseline,
    GBRTConfig,
    GradientBoostedTrees,
    RegressionTree,
)
from repro.baselines.base import (
    BaselineDims,
    DeepBaseline,
    correlation_adjacency,
    distance_adjacency,
    interaction_adjacency,
    normalized_adjacency,
)
from repro.baselines.mlp import MLPBaseline
from repro.baselines.recurrent import LSTMBaseline, RNNBaseline
from repro.baselines.gcnn import GCNNBaseline
from repro.baselines.mgnn import MGNNBaseline
from repro.baselines.astgcn import ASTGCNBaseline
from repro.baselines.stsgcn import STSGCNBaseline, build_block_adjacency
from repro.baselines.gbike import GBikeBaseline

# Factories: callable(dataset) -> fitted classical predictor.
CLASSICAL_BASELINES = {
    "HA": lambda dataset: HistoricalAverage(dataset).fit(),
    "ARIMA": lambda dataset: ArimaBaseline(dataset).fit(),
    "XGBoost": lambda dataset: GBRTBaseline(dataset).fit(),
}

# Factories: callable(dataset, seed) -> untrained deep model.
DEEP_BASELINES = {
    "MLP": MLPBaseline.from_dataset,
    "RNN": RNNBaseline.from_dataset,
    "LSTM": LSTMBaseline.from_dataset,
    "GCNN": GCNNBaseline.from_dataset,
    "MGNN": MGNNBaseline.from_dataset,
    "ASTGCN": ASTGCNBaseline.from_dataset,
    "STSGCN": STSGCNBaseline.from_dataset,
    "GBike": GBikeBaseline.from_dataset,
}

__all__ = [
    "HistoricalAverage",
    "ArimaBaseline",
    "ArimaModel",
    "ArimaOrder",
    "GBRTBaseline",
    "GBRTConfig",
    "GradientBoostedTrees",
    "RegressionTree",
    "BaselineDims",
    "DeepBaseline",
    "normalized_adjacency",
    "distance_adjacency",
    "correlation_adjacency",
    "interaction_adjacency",
    "MLPBaseline",
    "RNNBaseline",
    "LSTMBaseline",
    "GCNNBaseline",
    "MGNNBaseline",
    "ASTGCNBaseline",
    "STSGCNBaseline",
    "build_block_adjacency",
    "GBikeBaseline",
    "CLASSICAL_BASELINES",
    "DEEP_BASELINES",
]

"""MLP baseline: a three-layer fully connected network (paper Table I).

Each station's flattened recent+daily demand/supply history is mapped
independently (shared weights across stations) through three FC layers
to its ``(demand, supply)`` prediction. No spatial information at all —
the paper's representative of pure-temporal deep models.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineDims, DeepBaseline
from repro.data.dataset import BikeShareDataset, FlowSample
from repro.nn import Dropout, Linear
from repro.tensor import Tensor


class MLPBaseline(DeepBaseline):
    """Three-layer MLP over per-station history features."""

    def __init__(
        self,
        dims: BaselineDims,
        hidden: int = 64,
        dropout: float = 0.2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(dims)
        rng = rng or np.random.default_rng()
        width = self.station_feature_width
        self.layer1 = Linear(width, hidden, rng=rng)
        self.layer2 = Linear(hidden, hidden, rng=rng)
        self.layer3 = Linear(hidden, 2, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    @classmethod
    def from_dataset(
        cls, dataset: BikeShareDataset, seed: int = 0, **kwargs
    ) -> "MLPBaseline":
        return cls(BaselineDims.from_dataset(dataset), rng=np.random.default_rng(seed), **kwargs)

    def forward(self, sample: FlowSample) -> tuple[Tensor, Tensor]:
        features = Tensor(self.station_features(sample))
        hidden = self.dropout(self.layer1(features).relu())
        hidden = self.dropout(self.layer2(hidden).relu())
        output = self.layer3(hidden)  # (n, 2)
        return output[:, 0], output[:, 1]

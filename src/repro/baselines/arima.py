"""ARIMA baseline, implemented from scratch.

Per-station, per-target ARIMA(p, d, q) fitted with the Hannan-Rissanen
two-stage procedure:

1. fit a long autoregression by ordinary least squares and take its
   residuals as estimates of the innovation sequence;
2. regress the (differenced) series on its own ``p`` lags and the ``q``
   lagged residual estimates.

This avoids iterative maximum-likelihood while reproducing the model
class the paper compares against ("ARIMA... the size of the sliding
window is set as 12" — our default window/lag budget matches). Forecasts
are rolled forward one step using the most recent observations, and a
rolling-origin :meth:`ArimaBaseline.predict` evaluates every test slot
with the history available at that slot, like the paper's online setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import BikeShareDataset


@dataclass(frozen=True, slots=True)
class ArimaOrder:
    """Model order (p: AR lags, d: differencing, q: MA lags)."""

    p: int = 3
    d: int = 1
    q: int = 1

    def __post_init__(self) -> None:
        if self.p < 1 or self.d < 0 or self.q < 0:
            raise ValueError(f"invalid ARIMA order {self}")


class ArimaModel:
    """ARIMA(p, d, q) for a single univariate series."""

    def __init__(self, order: ArimaOrder, window: int = 12) -> None:
        self.order = order
        self.window = window
        self.ar_coefs: np.ndarray | None = None
        self.ma_coefs: np.ndarray | None = None
        self.intercept = 0.0
        self._residual_history: np.ndarray | None = None

    def fit(self, series: np.ndarray) -> "ArimaModel":
        series = np.asarray(series, dtype=np.float64)
        work = np.diff(series, n=self.order.d) if self.order.d else series.copy()
        p, q = self.order.p, self.order.q
        if len(work) < max(self.window, p + q) + q + 2:
            # Degenerate series: fall back to a mean model.
            self.ar_coefs = np.zeros(p)
            self.ma_coefs = np.zeros(q)
            self.intercept = float(work.mean()) if len(work) else 0.0
            self._residual_history = np.zeros(max(q, 1))
            return self

        # Stage 1: long AR to estimate innovations.
        long_order = min(self.window, len(work) // 2)
        residuals = _ar_residuals(work, long_order)

        # Stage 2: regress on p lags of the series and q lagged residuals.
        # Residuals from stage 1 start at offset long_order.
        offset = long_order
        usable = len(work) - offset
        rows = usable - max(p, q)
        if rows < p + q + 1:
            self.ar_coefs = np.zeros(p)
            self.ma_coefs = np.zeros(q)
            self.intercept = float(work.mean())
            self._residual_history = np.zeros(max(q, 1))
            return self

        design = np.empty((rows, p + q + 1))
        target = np.empty(rows)
        for row in range(rows):
            t = offset + max(p, q) + row  # index into work
            design[row, 0] = 1.0
            design[row, 1 : p + 1] = work[t - p : t][::-1]
            r_index = t - offset
            design[row, p + 1 :] = residuals[r_index - q : r_index][::-1] if q else []
            target[row] = work[t]
        coefs, *_ = np.linalg.lstsq(design, target, rcond=None)
        self.intercept = float(coefs[0])
        self.ar_coefs = coefs[1 : p + 1]
        self.ma_coefs = coefs[p + 1 :]
        self._residual_history = residuals[-max(q, 1) :]
        return self

    def forecast_next(self, history: np.ndarray) -> float:
        """One-step-ahead forecast given the raw series history."""
        if self.ar_coefs is None:
            raise RuntimeError("ArimaModel used before fit()")
        history = np.asarray(history, dtype=np.float64)
        work = np.diff(history, n=self.order.d) if self.order.d else history
        p, q = self.order.p, self.order.q
        if len(work) < p:
            return float(history[-1]) if len(history) else 0.0
        prediction = self.intercept + float(self.ar_coefs @ work[-p:][::-1])
        if q and self._residual_history is not None and len(self._residual_history) >= q:
            prediction += float(self.ma_coefs @ self._residual_history[-q:][::-1])
        # Undifference: forecast of the original scale.
        if self.order.d:
            base = history[-1]
            for extra in range(1, self.order.d):
                base += np.diff(history, n=extra)[-1]
            prediction += base
        return float(prediction)


def _ar_residuals(series: np.ndarray, order: int) -> np.ndarray:
    """OLS AR(order) residuals of ``series`` (length len-order)."""
    rows = len(series) - order
    design = np.empty((rows, order + 1))
    design[:, 0] = 1.0
    for lag in range(1, order + 1):
        design[:, lag] = series[order - lag : len(series) - lag]
    target = series[order:]
    coefs, *_ = np.linalg.lstsq(design, target, rcond=None)
    return target - design @ coefs


class ArimaBaseline:
    """Per-station ARIMA forecaster for demand and supply."""

    def __init__(
        self,
        dataset: BikeShareDataset,
        order: ArimaOrder | None = None,
        window: int = 12,
    ) -> None:
        self.dataset = dataset
        self.order = order or ArimaOrder()
        self.window = window
        self._demand_models: list[ArimaModel] = []
        self._supply_models: list[ArimaModel] = []
        self._fit_end = 0

    def fit(self) -> "ArimaBaseline":
        train_idx, _, _ = self.dataset.split_indices()
        self._fit_end = int(train_idx[-1]) + 1
        self._demand_models = []
        self._supply_models = []
        for station in range(self.dataset.num_stations):
            demand_series = self.dataset.demand[: self._fit_end, station]
            supply_series = self.dataset.supply[: self._fit_end, station]
            self._demand_models.append(
                ArimaModel(self.order, self.window).fit(demand_series)
            )
            self._supply_models.append(
                ArimaModel(self.order, self.window).fit(supply_series)
            )
        return self

    def predict(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """Rolling one-step forecast using history up to ``t-1``.

        Negative forecasts are floored at 0 (counts cannot be negative).
        """
        if not self._demand_models:
            raise RuntimeError("ArimaBaseline used before fit()")
        n = self.dataset.num_stations
        demand = np.empty(n)
        supply = np.empty(n)
        for station in range(n):
            demand[station] = self._demand_models[station].forecast_next(
                self.dataset.demand[:t, station]
            )
            supply[station] = self._supply_models[station].forecast_next(
                self.dataset.supply[:t, station]
            )
        return np.maximum(demand, 0.0), np.maximum(supply, 0.0)

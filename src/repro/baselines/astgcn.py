"""ASTGCN baseline [Guo et al., AAAI 2019].

Attention-based spatial-temporal GCN: *independent* branches for the
recent, daily-periodic and weekly-periodic history (the paper's "three
temporal properties ... modelled independently"), each applying a
spatial attention reweighting of a distance-graph GCN plus a temporal
1x1 convolution over its window, fused by learned branch weights.

The decoupled-and-local design is exactly what STGNN-DJD argues against:
branches never interact, and the graph is the static locality kernel.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineDims,
    DeepBaseline,
    distance_adjacency,
    normalized_adjacency,
)
from repro.data.dataset import BikeShareDataset, FlowSample
from repro.nn import Dropout, Linear, Module, Parameter, ScaledDotProductAttention, init
from repro.tensor import Tensor


class _Branch(Module):
    """One temporal branch: window -> spatial attention -> GCN."""

    def __init__(
        self,
        window: int,
        hidden: int,
        propagation: Tensor,
        rng: np.random.Generator,
        dropout: float,
    ) -> None:
        super().__init__()
        self.window = window
        self.propagation = propagation
        self.embed = Linear(2 * window, hidden, rng=rng)
        self.spatial_attention = ScaledDotProductAttention(hidden, rng)
        self.gcn = Linear(hidden, hidden, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, series: np.ndarray) -> Tensor:
        """``series`` is ``(window, n, 2)``; returns ``(n, hidden)``."""
        n = series.shape[1]
        flat = series.transpose(1, 0, 2).reshape(n, -1)
        hidden = self.embed(Tensor(flat)).relu()
        # Spatial attention reweights station interactions before the
        # (locality-graph) convolution — the ASTGCN SAtt block.
        attended = self.spatial_attention(hidden)
        return self.dropout(self.gcn(self.propagation @ attended).relu())


class ASTGCNBaseline(DeepBaseline):
    """Recent/daily/weekly branches with learned fusion."""

    def __init__(
        self,
        dims: BaselineDims,
        adjacency: np.ndarray,
        hidden: int = 48,
        dropout: float = 0.2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(dims)
        rng = rng or np.random.default_rng()
        propagation = Tensor(normalized_adjacency(adjacency))
        self.recent_branch = _Branch(dims.history, hidden, propagation, rng, dropout)
        self.daily_branch = (
            _Branch(dims.daily, hidden, propagation, rng, dropout) if dims.daily else None
        )
        branches = 1 + int(dims.daily > 0)
        # Learned fusion weights (ASTGCN's W_fusion), one scalar gate per
        # branch per hidden unit.
        self.fusion = Parameter(init.xavier_uniform((branches, hidden), rng), name="fusion")
        self.head = Linear(hidden, 2, rng=rng)

    @classmethod
    def from_dataset(
        cls, dataset: BikeShareDataset, seed: int = 0, **kwargs
    ) -> "ASTGCNBaseline":
        return cls(
            BaselineDims.from_dataset(dataset),
            distance_adjacency(dataset),
            rng=np.random.default_rng(seed),
            **kwargs,
        )

    def forward(self, sample: FlowSample) -> tuple[Tensor, Tensor]:
        outputs = [self.recent_branch(self.recent_history(sample))]
        if self.daily_branch is not None:
            outputs.append(self.daily_branch(self.daily_history(sample)))
        fused = None
        for index, branch_output in enumerate(outputs):
            weighted = branch_output * self.fusion[index]
            fused = weighted if fused is None else fused + weighted
        output = self.head(fused)
        return output[:, 0], output[:, 1]

"""RNN and LSTM baselines (paper Table I).

Each station's recent demand/supply series is encoded by a shared
recurrent network (stations form the batch dimension) and the final
hidden state is mapped to ``(demand, supply)``. These are the paper's
representatives of sequential temporal models — no spatial dependency.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineDims, DeepBaseline
from repro.data.dataset import BikeShareDataset, FlowSample
from repro.nn import Linear, LSTMEncoder, RNNEncoder
from repro.tensor import Tensor


class RNNBaseline(DeepBaseline):
    """Vanilla RNN encoder + linear head."""

    encoder_cls = RNNEncoder

    def __init__(
        self,
        dims: BaselineDims,
        hidden: int = 32,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(dims)
        rng = rng or np.random.default_rng()
        self.encoder = self.encoder_cls(2, hidden, rng)
        self.head = Linear(hidden, 2, rng=rng)

    @classmethod
    def from_dataset(
        cls, dataset: BikeShareDataset, seed: int = 0, **kwargs
    ):
        # Recurrent baselines unroll per time step, so a shorter history
        # window keeps them tractable without changing their character.
        dims = BaselineDims.from_dataset(dataset, history=12)
        return cls(dims, rng=np.random.default_rng(seed), **kwargs)

    def forward(self, sample: FlowSample) -> tuple[Tensor, Tensor]:
        sequence = Tensor(self.recent_history(sample))  # (h, n, 2)
        final_hidden = self.encoder(sequence)  # (n, hidden)
        output = self.head(final_hidden)
        return output[:, 0], output[:, 1]


class LSTMBaseline(RNNBaseline):
    """LSTM encoder + linear head."""

    encoder_cls = LSTMEncoder

"""MGNN baseline [Chai et al., 2018] — multi-graph convolution.

Three station graphs are built from training data — *distance*
(locality), *correlation* (demand-pattern similarity) and *interaction*
(aggregate ride volume) — and each GCN layer averages the propagation of
all three, "considering correlations between stations without graph
attention" (paper Sec. VII-B). Still static: the graphs are fixed after
fitting, unlike STGNN-DJD's per-time-slot regeneration.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineDims,
    DeepBaseline,
    correlation_adjacency,
    distance_adjacency,
    interaction_adjacency,
    normalized_adjacency,
)
from repro.data.dataset import BikeShareDataset, FlowSample
from repro.nn import Dropout, Linear
from repro.tensor import Tensor


class MGNNBaseline(DeepBaseline):
    """Multi-graph GCN over distance/correlation/interaction graphs."""

    def __init__(
        self,
        dims: BaselineDims,
        adjacencies: list[np.ndarray],
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(dims)
        if not adjacencies:
            raise ValueError("MGNN needs at least one graph")
        rng = rng or np.random.default_rng()
        self.propagations = [Tensor(normalized_adjacency(a)) for a in adjacencies]
        self.embed = Linear(self.station_feature_width, hidden, rng=rng)
        # One weight per (layer, graph): graph-specific transforms whose
        # outputs are averaged, the standard multi-graph fusion.
        self.graph_layers: list[list[Linear]] = []
        for layer_idx in range(num_layers):
            row = [Linear(hidden, hidden, rng=rng) for _ in adjacencies]
            for graph_idx, layer in enumerate(row):
                self.register_module(f"layer{layer_idx}_graph{graph_idx}", layer)
            self.graph_layers.append(row)
        self.head = Linear(hidden, 2, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    @classmethod
    def from_dataset(
        cls, dataset: BikeShareDataset, seed: int = 0, **kwargs
    ) -> "MGNNBaseline":
        graphs = [
            distance_adjacency(dataset),
            correlation_adjacency(dataset),
            interaction_adjacency(dataset),
        ]
        return cls(
            BaselineDims.from_dataset(dataset),
            graphs,
            rng=np.random.default_rng(seed),
            **kwargs,
        )

    def forward(self, sample: FlowSample) -> tuple[Tensor, Tensor]:
        hidden = self.embed(Tensor(self.station_features(sample))).relu()
        for row in self.graph_layers:
            fused = None
            for propagation, layer in zip(self.propagations, row):
                branch = layer(propagation @ hidden)
                fused = branch if fused is None else fused + branch
            hidden = self.dropout((fused * (1.0 / len(row))).relu())
        output = self.head(hidden)
        return output[:, 0], output[:, 1]

"""GCNN baseline [Lin et al., 2018] — conventional graph convolution.

Per-station history features are propagated over a *distance-kernel*
graph with two Kipf-Welling GCN layers, then mapped to predictions.
This is the paper's representative of plain spectral graph convolution:
spatial dependency is captured, but the graph is static and encodes only
"link correlations" (locality), with no attention and no flow structure.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineDims,
    DeepBaseline,
    distance_adjacency,
    normalized_adjacency,
)
from repro.data.dataset import BikeShareDataset, FlowSample
from repro.nn import Dropout, Linear
from repro.tensor import Tensor


class GCNNBaseline(DeepBaseline):
    """Two-layer GCN over a static distance graph."""

    def __init__(
        self,
        dims: BaselineDims,
        adjacency: np.ndarray,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(dims)
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng()
        self.propagation = Tensor(normalized_adjacency(adjacency))
        self.embed = Linear(self.station_feature_width, hidden, rng=rng)
        self.gcn_layers = [Linear(hidden, hidden, rng=rng) for _ in range(num_layers)]
        for i, layer in enumerate(self.gcn_layers):
            self.register_module(f"gcn{i}", layer)
        self.head = Linear(hidden, 2, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    @classmethod
    def from_dataset(
        cls, dataset: BikeShareDataset, seed: int = 0, **kwargs
    ) -> "GCNNBaseline":
        return cls(
            BaselineDims.from_dataset(dataset),
            distance_adjacency(dataset),
            rng=np.random.default_rng(seed),
            **kwargs,
        )

    def forward(self, sample: FlowSample) -> tuple[Tensor, Tensor]:
        hidden = self.embed(Tensor(self.station_features(sample))).relu()
        for layer in self.gcn_layers:
            hidden = self.dropout(layer(self.propagation @ hidden).relu())
        output = self.head(hidden)
        return output[:, 0], output[:, 1]

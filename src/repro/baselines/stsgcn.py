"""STSGCN baseline [Song et al., AAAI 2020].

Spatial-Temporal Synchronous GCN: consecutive time slots are tied into
one *localized spatial-temporal graph* — a block adjacency over
``window x n`` nodes where diagonal blocks are the spatial graph and
off-diagonal blocks are identity links between the same station at
adjacent slots. Graph convolution on this block graph captures local ST
correlation *synchronously* (the property the paper credits STSGCN
with), after which the representation is cropped back to the current
slot's stations for prediction.

The localized window means long-range (in time or space) dependency is
out of reach — STGNN-DJD's point of comparison.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineDims,
    DeepBaseline,
    distance_adjacency,
    normalized_adjacency,
)
from repro.data.dataset import BikeShareDataset, FlowSample
from repro.nn import Dropout, Linear
from repro.tensor import Tensor


def build_block_adjacency(spatial: np.ndarray, window: int) -> np.ndarray:
    """The localized ST graph: ``(window*n, window*n)`` block matrix.

    Diagonal blocks: the spatial adjacency at each slot. First off-
    diagonals: identity edges connecting a station to itself at the
    previous/next slot — STSGCN's temporal links.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    n = len(spatial)
    block = np.zeros((window * n, window * n))
    eye = np.eye(n)
    for slot in range(window):
        lo, hi = slot * n, (slot + 1) * n
        block[lo:hi, lo:hi] = spatial
        if slot + 1 < window:
            nxt_lo, nxt_hi = (slot + 1) * n, (slot + 2) * n
            block[lo:hi, nxt_lo:nxt_hi] = eye
            block[nxt_lo:nxt_hi, lo:hi] = eye
    return block


class STSGCNBaseline(DeepBaseline):
    """Synchronous GCN over a 3-slot localized ST block graph."""

    def __init__(
        self,
        dims: BaselineDims,
        adjacency: np.ndarray,
        window: int = 3,
        hidden: int = 48,
        num_layers: int = 2,
        dropout: float = 0.2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(dims)
        if window < 1 or window > dims.history:
            raise ValueError(f"window must be in [1, history], got {window}")
        rng = rng or np.random.default_rng()
        self.window = window
        self.propagation = Tensor(
            normalized_adjacency(build_block_adjacency(adjacency, window))
        )
        self.embed = Linear(2, hidden, rng=rng)
        self.sync_layers = [Linear(hidden, hidden, rng=rng) for _ in range(num_layers)]
        for i, layer in enumerate(self.sync_layers):
            self.register_module(f"sync{i}", layer)
        self.head = Linear(hidden, 2, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    @classmethod
    def from_dataset(
        cls, dataset: BikeShareDataset, seed: int = 0, **kwargs
    ) -> "STSGCNBaseline":
        return cls(
            BaselineDims.from_dataset(dataset),
            distance_adjacency(dataset),
            rng=np.random.default_rng(seed),
            **kwargs,
        )

    def forward(self, sample: FlowSample) -> tuple[Tensor, Tensor]:
        recent = self.recent_history(sample)[-self.window :]  # (w, n, 2)
        n = recent.shape[1]
        stacked = recent.reshape(self.window * n, 2)  # slot-major node list
        hidden = self.embed(Tensor(stacked)).relu()
        for layer in self.sync_layers:
            hidden = self.dropout(layer(self.propagation @ hidden).relu())
        # Crop to the latest slot's stations (the prediction targets).
        latest = hidden[(self.window - 1) * n :]
        output = self.head(latest)
        return output[:, 0], output[:, 1]

"""GBike baseline [He & Shin, WWW 2020].

A spatial-temporal graph-attention model with a *distance prior*: it
"assumed that closer stations would have more dependency than distant
stations, and used a predefined metric to measure the dependency in
terms of distance" (paper Sec. VII-B). We implement that mechanism as
graph attention whose logits are additively biased by the log of a
distance-decay kernel — attention can sharpen locality but can never
promote a distant station above the prior's decay, which is exactly
the limitation Figs. 10-12 illustrate.

``dependency_matrix`` exposes the resulting attention for the Fig. 10
case-study comparison.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineDims, DeepBaseline
from repro.data.dataset import BikeShareDataset, FlowSample
from repro.nn import Dropout, Linear, PairwiseAdditiveAttention
from repro.tensor import Tensor, no_grad, ops


class GBikeBaseline(DeepBaseline):
    """Distance-prior graph attention network."""

    def __init__(
        self,
        dims: BaselineDims,
        distances_km: np.ndarray,
        decay_km: float = 1.0,
        hidden: int = 48,
        num_layers: int = 2,
        dropout: float = 0.2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(dims)
        if decay_km <= 0:
            raise ValueError("decay_km must be positive")
        rng = rng or np.random.default_rng()
        # Log-kernel bias: softmax(e + log k) = softmax-of-(exp(e) * k),
        # i.e. attention scores multiplied by the locality prior.
        kernel = np.exp(-np.asarray(distances_km) / decay_km)
        self._log_kernel = np.log(np.maximum(kernel, 1e-12))
        self.embed = Linear(self.station_feature_width, hidden, rng=rng)
        self.attentions = [PairwiseAdditiveAttention(hidden, rng) for _ in range(num_layers)]
        self.values = [Linear(hidden, hidden, bias=False, rng=rng) for _ in range(num_layers)]
        for i, (attention, value) in enumerate(zip(self.attentions, self.values)):
            self.register_module(f"attention{i}", attention)
            self.register_module(f"value{i}", value)
        self.head = Linear(hidden, 2, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    @classmethod
    def from_dataset(
        cls, dataset: BikeShareDataset, seed: int = 0, **kwargs
    ) -> "GBikeBaseline":
        return cls(
            BaselineDims.from_dataset(dataset),
            dataset.registry.distance_matrix(),
            rng=np.random.default_rng(seed),
            **kwargs,
        )

    def _attention_with_prior(
        self, attention: PairwiseAdditiveAttention, hidden: Tensor
    ) -> Tensor:
        raw = attention.scores(hidden)
        return ops.softmax(raw + Tensor(self._log_kernel), axis=-1)

    def forward(self, sample: FlowSample) -> tuple[Tensor, Tensor]:
        hidden = self.embed(Tensor(self.station_features(sample))).relu()
        for attention, value in zip(self.attentions, self.values):
            alpha = self._attention_with_prior(attention, hidden)
            hidden = self.dropout((alpha @ value(hidden)).elu())
        output = self.head(hidden)
        return output[:, 0], output[:, 1]

    def dependency_matrix(self, sample: FlowSample) -> np.ndarray:
        """First-layer prior-biased attention — the Fig. 10 quantity."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                hidden = self.embed(Tensor(self.station_features(sample))).relu()
                return self._attention_with_prior(self.attentions[0], hidden).data.copy()
        finally:
            self.train(was_training)

"""Stdlib HTTP front end for the prediction service.

A :class:`ThreadingHTTPServer` whose handler threads feed a shared
:class:`~repro.serve.service.PredictionService`:

* ``POST /ingest``   — body ``{"trips": [{"origin", "destination",
  "start_time", "end_time"}, ...]}`` (or a single trip object); events
  fold into the flow-state store, the response reports accepted/dropped
  counts and the current frontier slot.
* ``GET|POST /predict`` — optional ``?stations=0,3,7`` query (GET) or
  ``{"stations": [...]}`` body (POST); answers with denormalised demand
  and supply for the frontier slot. ``503`` with a ``Retry-After``
  header when the admission queue rejects.
* ``GET /healthz``   — liveness plus frontier/model-version/warm-up.
* ``GET /status``    — operational summary: SLO health evaluated from
  the live metrics, trace sampling state, quality windows.
* ``GET /metrics``   — the ``repro.obs`` registry in Prometheus text
  format (:func:`repro.obs.prometheus.prometheus_text`).
* ``POST /admin/reload`` — checkpoint hot-reload trigger; ``500`` with
  the error message (old model keeps serving) on failure.

``/predict`` and ``/ingest`` speak W3C trace context: an incoming
``traceparent`` header parents the request's span tree (a malformed or
absent header starts a fresh root — never an error), and every response
sent while a span is open carries the current span's ``traceparent``
back to the caller. With tracing enabled, one request's JSONL spans
reconstruct the full path — HTTP handling, queue wait, batch assembly,
forward kernels, serialization — via ``python -m repro.obs.trace``.

Request handling is deliberately thin: parse, delegate, serialize.
Every serving decision (batching, backpressure, caching, reload
atomicity) lives in the service layer where it is unit-testable without
sockets.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.obs.prometheus import prometheus_text
from repro.obs.trace import (
    TRACEPARENT_HEADER,
    current_context,
    format_traceparent,
    parse_traceparent,
    trace_span,
)
from repro.serve.service import PredictionService, ServiceOverloaded
from repro.utils import get_logger

logger = get_logger("serve.http")


class ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one PredictionService.

    ``service`` may be anything exposing the handler's contract —
    ``predict``/``store``/``status``/``reload``/``model_version``/
    ``running``/``reload_failed`` — which is how the fleet router
    (:class:`repro.serve.fleet.FleetRouter`) reuses this front end
    unchanged. ``handler`` swaps in a subclassed request handler (the
    fleet adds ``/replicas``).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: PredictionService,
        handler: "type[ServingHandler] | None" = None,
    ) -> None:
        super().__init__(address, handler or ServingHandler)
        self.service = service


class ServingHandler(BaseHTTPRequestHandler):
    server: ServingHTTPServer

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        ctx = current_context()
        if ctx is not None:
            # Hand the caller our span context so client and server
            # timelines join into one trace.
            self.send_header(TRACEPARENT_HEADER, format_traceparent(ctx))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _span(self, name: str):
        """A server span for this request, parented by the client's
        ``traceparent`` header when present and well-formed."""
        parent = parse_traceparent(self.headers.get(TRACEPARENT_HEADER))
        return trace_span(name, parent=parent, method=self.command)

    def _read_json(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "malformed JSON body"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return None
        return payload

    # -- routing --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        if url.path == "/healthz":
            self._healthz()
        elif url.path == "/status":
            self._status()
        elif url.path == "/metrics":
            self._metrics()
        elif url.path == "/predict":
            self._predict(_stations_from_query(url.query))
        else:
            self._send_json(404, {"error": f"unknown path {url.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        if url.path == "/ingest":
            self._ingest()
        elif url.path == "/predict":
            payload = self._read_json()
            if payload is not None:
                self._predict(payload.get("stations"))
        elif url.path == "/admin/reload":
            self._reload()
        else:
            self._send_json(404, {"error": f"unknown path {url.path}"})

    # -- endpoints ------------------------------------------------------
    def _healthz(self) -> None:
        service = self.server.service
        store = service.store
        self._send_json(200, {
            "status": "ok",
            "frontier": store.frontier,
            "warmed_up": store.warmed_up,
            "model_version": service.model_version,
            "dispatcher_running": service.running,
            "reload_failed": service.reload_failed,
        })

    def _status(self) -> None:
        self._send_json(200, self.server.service.status())

    def _metrics(self) -> None:
        body = prometheus_text().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _ingest(self) -> None:
        with self._span("http.ingest") as span:
            payload = self._read_json()
            if payload is None:
                return
            trips = payload.get("trips", [payload] if payload else [])
            if not isinstance(trips, list):
                self._send_json(400, {"error": "'trips' must be a list"})
                return
            store = self.server.service.store
            accepted = dropped = 0
            try:
                for trip in trips:
                    ok = store.ingest_event(
                        int(trip["origin"]),
                        int(trip["destination"]),
                        float(trip["start_time"]),
                        float(trip["end_time"]),
                    )
                    accepted += ok
                    dropped += not ok
            except (KeyError, TypeError):
                self._send_json(400, {
                    "error": "each trip needs origin, destination, start_time, end_time"
                })
                return
            except ValueError as error:
                self._send_json(400, {"error": str(error)})
                return
            span.set(status=200, accepted=accepted, dropped_late=dropped)
            self._send_json(200, {
                "accepted": accepted,
                "dropped_late": dropped,
                "frontier": store.frontier,
            })

    def _predict(self, stations) -> None:
        with self._span("http.predict") as span:
            if stations is not None:
                try:
                    stations = [int(s) for s in stations]
                except (TypeError, ValueError):
                    self._send_json(400, {"error": "'stations' must be a list of ids"})
                    return
            service = self.server.service
            try:
                forecast = service.predict(stations)
            except ServiceOverloaded as error:
                span.set(status=503)
                self._send_json(
                    503,
                    {"error": str(error), "retry_after": error.retry_after},
                    headers={"Retry-After": f"{error.retry_after:.3f}"},
                )
                return
            except (ValueError, IndexError) as error:
                span.set(status=400)
                self._send_json(400, {"error": str(error)})
                return
            span.set(status=200, cached=forecast.cached, stale=forecast.stale)
            with trace_span("http.serialize", stations=len(forecast.stations)):
                self._send_json(200, {
                    "slot": forecast.slot,
                    "stations": np.asarray(forecast.stations).tolist(),
                    "demand": forecast.demand.tolist(),
                    "supply": forecast.supply.tolist(),
                    "model_version": forecast.model_version,
                    "cached": forecast.cached,
                    "stale": forecast.stale,
                })

    def _reload(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        service = self.server.service
        try:
            version = service.reload(payload.get("checkpoint"))
        except BaseException as error:  # keep serving the old model
            self._send_json(500, {"error": str(error)})
            return
        self._send_json(200, {"reloaded": True, "model_version": version})


def _stations_from_query(query: str) -> list[str] | None:
    params = parse_qs(query)
    if "stations" not in params:
        return None
    stations: list[str] = []
    for chunk in params["stations"]:
        stations.extend(s for s in chunk.split(",") if s)
    return stations


def make_server(
    service: PredictionService, host: str = "127.0.0.1", port: int = 0
) -> ServingHTTPServer:
    """Bind a serving HTTP server (``port=0`` picks a free port)."""
    return ServingHTTPServer((host, port), service)

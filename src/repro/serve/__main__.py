"""``python -m repro.serve`` — boot the prediction HTTP server.

Serves a checkpoint (or a freshly initialised model when none is given)
over a synthetic city whose history warm-starts the flow-state store::

    # train + checkpoint first, e.g. examples/train_save_deploy.py
    python -m repro.serve --checkpoint /tmp/stgnn.npz --port 8973

    curl localhost:8973/healthz
    curl -X POST localhost:8973/ingest -d \\
        '{"trips": [{"origin": 0, "destination": 3,
                     "start_time": 1210000, "end_time": 1210600}]}'
    curl 'localhost:8973/predict?stations=0,3'
    curl localhost:8973/metrics
    curl -X POST localhost:8973/admin/reload

``--shards K`` and/or ``--replicas N`` boot the fleet tier instead: the
same HTTP surface over a K-way station-sharded store and N replicated
prediction services with least-loaded routing, plus ``GET /replicas``::

    python -m repro.serve --shards 2 --replicas 2 --port 8973
    curl localhost:8973/replicas

The ``--city`` options regenerate the same deterministic synthetic
datasets the examples use, so a checkpoint trained by
``examples/train_save_deploy.py`` matches ``--city deploy`` here.
"""

from __future__ import annotations

import argparse

from repro.core.model import STGNNDJD
from repro.core.persistence import load_stgnn
from repro.data.synthetic import SyntheticCityConfig, generate_city
from repro.obs.events import JsonlExporter, set_sink
from repro.obs.quality import QualityConfig
from repro.obs.registry import enable_metrics
from repro.obs.slo import SLOConfig
from repro.obs.trace import TraceConfig, enable_tracing
from repro.serve.fleet import FleetRouter, make_fleet_server
from repro.serve.http import make_server
from repro.serve.service import PredictionService, ServiceConfig
from repro.utils import get_logger, set_global_level

logger = get_logger("serve.cli")


def _city_config(name: str) -> SyntheticCityConfig:
    if name == "tiny":
        return SyntheticCityConfig.tiny()
    if name == "la":
        return SyntheticCityConfig.la_like(days=14)
    if name == "chicago":
        return SyntheticCityConfig.chicago_like(days=14)
    if name == "deploy":
        # Mirrors examples/train_save_deploy.py so its checkpoint loads.
        return SyntheticCityConfig(
            name="deploy-city", num_stations=12, days=14,
            trips_per_day=70.0 * 12, slot_seconds=1800.0,
            short_window=48, long_days=3,
        )
    raise ValueError(f"unknown city preset {name!r}")


def _validate_args(parser: argparse.ArgumentParser,
                   args: argparse.Namespace) -> None:
    """Reject inconsistent flag combinations with a clear parser error.

    Everything here used to surface later as a traceback from some
    config ``__post_init__`` (or, worse, as a hung fleet) — the CLI
    contract is that bad flags die at parse time with the flag's name
    in the message.
    """
    if args.replicas < 1:
        parser.error(f"--replicas must be >= 1, got {args.replicas}")
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    num_stations = _city_config(args.city).num_stations
    if args.shards > num_stations:
        parser.error(
            f"--shards {args.shards} exceeds the {num_stations} stations "
            f"of --city {args.city} (each shard needs at least one station)"
        )
    if args.max_batch < 1:
        parser.error(f"--max-batch must be >= 1, got {args.max_batch}")
    if args.batch_wait < 0:
        parser.error(f"--batch-wait must be >= 0, got {args.batch_wait}")
    if args.queue_depth < 1:
        parser.error(f"--queue-depth must be >= 1, got {args.queue_depth}")
    if args.reload_poll is not None and args.reload_poll <= 0:
        parser.error(f"--reload-poll must be > 0, got {args.reload_poll}")
    if not 0.0 <= args.trace_sample <= 1.0:
        parser.error(
            f"--trace-sample must be in 0..1, got {args.trace_sample}"
        )
    if args.slo_p99 <= 0:
        parser.error(f"--slo-p99 must be > 0, got {args.slo_p99}")
    if args.quality_window is not None:
        if not args.quality:
            parser.error("--quality-window requires --quality")
        if args.quality_window < 1:
            parser.error(
                f"--quality-window must be >= 1, got {args.quality_window}"
            )
    if args.trace and not args.events:
        parser.error("--trace requires --events (spans need a sink)")


def _service_config(args: argparse.Namespace) -> ServiceConfig:
    quality_window = (
        256 if args.quality_window is None else args.quality_window
    )
    return ServiceConfig(
        max_batch=args.max_batch,
        batch_wait_seconds=args.batch_wait,
        queue_depth=args.queue_depth,
        checkpoint_path=args.checkpoint,
        reload_poll_seconds=args.reload_poll if args.checkpoint else None,
        quality=(
            QualityConfig(window=quality_window)
            if args.quality else None
        ),
        slo=SLOConfig(p99_latency_seconds=args.slo_p99),
    )


def build_service(args: argparse.Namespace) -> "PredictionService | FleetRouter":
    """One service, or a fleet router when --shards/--replicas ask for it."""
    dataset = generate_city(_city_config(args.city), seed=args.seed)
    if args.checkpoint:
        model = load_stgnn(args.checkpoint)
    else:
        logger.warning("no --checkpoint given: serving an untrained model")
        model = STGNNDJD.from_dataset(dataset, seed=args.seed)
    config = _service_config(args)
    if args.replicas == 1 and args.shards == 1:
        return PredictionService.for_dataset(model, dataset, config=config)
    return FleetRouter.for_dataset(
        model, dataset,
        num_shards=args.shards, num_replicas=args.replicas,
        service_config=config,
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8973)
    parser.add_argument("--checkpoint", default=None,
                        help="model checkpoint (.npz); watched for hot-reload")
    parser.add_argument("--city", default="deploy",
                        choices=("deploy", "tiny", "la", "chicago"),
                        help="synthetic city whose history warms the store")
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--replicas", type=int, default=1,
                        help="prediction-service replicas behind the "
                             "fleet router (1: single service, no router)")
    parser.add_argument("--shards", type=int, default=1,
                        help="station shards for the flow store "
                             "(1 with --replicas 1: single store)")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--batch-wait", type=float, default=0.002,
                        help="micro-batch coalescing window, seconds")
    parser.add_argument("--queue-depth", type=int, default=256)
    parser.add_argument("--reload-poll", type=float, default=2.0,
                        help="checkpoint mtime poll interval, seconds")
    parser.add_argument("--events", default=None, metavar="PATH",
                        help="write the JSONL event stream (metrics "
                             "events + trace spans) to this file")
    parser.add_argument("--events-max-mb", type=float, default=64.0,
                        help="rotate the events file beyond this size")
    parser.add_argument("--trace", action="store_true",
                        help="enable request tracing (spans go to --events)")
    parser.add_argument("--trace-sample", type=float, default=1.0,
                        help="fraction of root traces recorded, 0..1")
    parser.add_argument("--quality", action="store_true",
                        help="enable continuous forecast-quality monitoring")
    parser.add_argument("--quality-window", type=int, default=None,
                        help="reconciled slots per rolling quality window "
                             "(requires --quality; default 256)")
    parser.add_argument("--slo-p99", type=float, default=0.25,
                        help="p99 request-latency objective, seconds")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    _validate_args(parser, args)

    if args.verbose:
        set_global_level("DEBUG")
    enable_metrics()
    if args.events:
        set_sink(JsonlExporter(
            args.events,
            max_bytes=int(args.events_max_mb * 1024 * 1024),
        ))
    if args.trace:
        enable_tracing(TraceConfig(sample_rate=args.trace_sample))
    service = build_service(args)
    if isinstance(service, FleetRouter):
        server = make_fleet_server(service, host=args.host, port=args.port)
    else:
        server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    with service:
        logger.info("serving on http://%s:%d (frontier slot %d)",
                    host, port, service.store.frontier)
        print(f"serving on http://{host}:{port}", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()


if __name__ == "__main__":
    main()

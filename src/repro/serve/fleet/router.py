"""Front-of-fleet router: N prediction replicas, one HTTP surface.

:class:`FleetRouter` runs N :class:`~repro.serve.service.PredictionService`
replicas — each with its own dispatcher, micro-batch queue, forecast
cache, and quality monitor — over one shared
:class:`~repro.serve.fleet.shard.ShardedFlowStore`, and duck-types the
single-service surface :class:`~repro.serve.http.ServingHandler`
consumes. The existing HTTP front end therefore serves a whole fleet
unchanged; :func:`make_fleet_server` just swaps in a handler subclass
that adds ``GET /replicas``.

Dispatch
--------
``predict`` picks the healthy replica with the fewest pending requests
(least-loaded), breaking ties round-robin so equal-load replicas share
traffic evenly; ``strategy="round_robin"`` skips the load signal
entirely. A replica that rejects (queue full) or fails (dispatcher
dead, injected crash) is skipped and the request retried on the next
candidate — only when *every* replica sheds does the router give up
with :class:`~repro.serve.service.ServiceOverloaded`, advertising the
smallest jittered ``Retry-After`` any replica offered. Dead replicas
are restarted in the background of the next dispatch that notices them
(``auto_restart=False`` leaves them down for the chaos tests to
inspect).

Staged reload
-------------
``reload`` never fans a new checkpoint straight out. One canary replica
reloads first and answers a shadow forecast; the canary must produce
all-finite output (and, when ``shadow_tolerance`` is set, stay within a
relative band of the incumbent replicas' forecast). Only then do the
remaining replicas reload — in-flight batches keep their old weights,
per the service's atomic-swap semantics. A canary that fails its check
is **quarantined** (excluded from dispatch, its old checkpoint file may
already be overwritten) and :class:`FleetReloadError` raised; traffic
keeps flowing on the incumbents, and ``restore_replica`` lifts the
quarantine after an operator (or test) intervenes.

Chaos seams: ``fleet.route`` fires per routed request; each replica
exposes ``fleet.replica{i}.dispatch/.forecast/.reload`` through its
service name. Traces gain a ``fleet.route`` span between the HTTP span
and the replica's queue/batch spans, so one traceparent still threads
client → router → replica → forward.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.model import STGNNDJD
from repro.data.dataset import BikeShareDataset
from repro.faults import fault_point
from repro.obs.registry import default_registry
from repro.obs.slo import aggregate_slos
from repro.obs.trace import trace_span, trace_status
from repro.serve.fleet.shard import ShardedFlowStore
from repro.serve.http import ServingHandler, ServingHTTPServer
from repro.serve.service import (
    Forecast,
    PredictionService,
    ServiceConfig,
    ServiceError,
    ServiceOverloaded,
)
from repro.utils import get_logger

logger = get_logger("serve.fleet")


class FleetReloadError(ServiceError):
    """A staged rollout stopped at the canary; incumbents keep serving."""


@dataclass(frozen=True, slots=True)
class FleetConfig:
    """Router knobs.

    ``strategy`` — ``"least_loaded"`` (pending-queue depth, round-robin
    tiebreak) or ``"round_robin"``. ``auto_restart`` — restart a dead
    replica's dispatcher when dispatch notices it. ``shadow_tolerance``
    — optional relative-deviation bound for the canary shadow check
    (``None`` checks finiteness only, since new weights legitimately
    move the numbers).
    """

    strategy: str = "least_loaded"
    auto_restart: bool = True
    shadow_tolerance: float | None = None

    def __post_init__(self) -> None:
        if self.strategy not in ("least_loaded", "round_robin"):
            raise ValueError(
                f"strategy must be 'least_loaded' or 'round_robin', "
                f"got {self.strategy!r}"
            )
        if self.shadow_tolerance is not None and self.shadow_tolerance <= 0:
            raise ValueError(
                f"shadow_tolerance must be > 0, got {self.shadow_tolerance}"
            )


class FleetRouter:
    """Route requests across replicas; aggregate their health."""

    def __init__(
        self,
        replicas: list[PredictionService],
        config: FleetConfig | None = None,
    ) -> None:
        if not replicas:
            raise ValueError("a fleet needs at least one replica")
        stores = {id(r.store) for r in replicas}
        if len(stores) != 1:
            raise ValueError(
                "all replicas must share one flow store — replicated "
                "inference over partitioned state, not partitioned inference"
            )
        self.config = config or FleetConfig()
        self.replicas = replicas
        self.store = replicas[0].store
        self._lock = threading.Lock()
        self._rr = 0  # round-robin cursor (also the tiebreak rotation)
        self._quarantined: set[int] = set()
        # Serializes staged rollouts: an operator-triggered reload and a
        # continual-learning promotion arriving together must not
        # interleave their canary → shadow-check → fan-out phases (two
        # concurrent canaries would shadow-check against each other's
        # half-rolled-out weights).
        self._reload_lock = threading.Lock()
        obs = default_registry()
        self._requests_counter = obs.counter("fleet.requests")
        self._retries_counter = obs.counter("fleet.retries")
        self._rejected_counter = obs.counter("fleet.rejected")
        self._restarts_counter = obs.counter("fleet.restarts")
        self._reload_stage_counter = obs.counter("fleet.staged_reloads")
        self._quarantine_gauge = obs.gauge("fleet.quarantined")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        model: STGNNDJD,
        store: ShardedFlowStore,
        demand_normalizer,
        supply_normalizer,
        num_replicas: int = 2,
        service_config: ServiceConfig | None = None,
        config: FleetConfig | None = None,
    ) -> "FleetRouter":
        """Stamp out N identically configured replicas over one store.

        Each replica gets ``name="fleet.replica{i}"`` — its own metric
        family, fault sites, and Retry-After jitter stream — and its
        own model copy (reload swaps weights per replica; sharing one
        model object would defeat the staged rollout).
        """
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        base = service_config or ServiceConfig()
        replicas = []
        for i in range(num_replicas):
            cfg = dataclasses.replace(base, name=f"fleet.replica{i}")
            replica_model = model if i == 0 else _clone_model(model)
            replicas.append(
                PredictionService(
                    replica_model, store,
                    demand_normalizer, supply_normalizer, cfg,
                )
            )
        return cls(replicas, config=config)

    @classmethod
    def for_dataset(
        cls,
        model: STGNNDJD,
        dataset: BikeShareDataset,
        num_shards: int = 2,
        num_replicas: int = 2,
        service_config: ServiceConfig | None = None,
        config: FleetConfig | None = None,
        frontier: int | None = None,
    ) -> "FleetRouter":
        """A warm fleet continuing where a dataset's history ends."""
        store = ShardedFlowStore.from_dataset(
            dataset, num_shards=num_shards, frontier=frontier
        )
        return cls.build(
            model, store,
            dataset.demand_normalizer, dataset.supply_normalizer,
            num_replicas=num_replicas,
            service_config=service_config, config=config,
        )

    # ------------------------------------------------------------------
    # Lifecycle (the handler's service contract)
    # ------------------------------------------------------------------
    def start(self) -> "FleetRouter":
        for replica in self.replicas:
            replica.start()
        return self

    def stop(self) -> None:
        for replica in self.replicas:
            replica.stop()

    def __enter__(self) -> "FleetRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """The fleet serves as long as any replica dispatcher is alive."""
        return any(r.running for r in self.replicas)

    @property
    def model_version(self) -> int:
        """The laggard's version: equal fleet-wide outside a staged reload."""
        return min(r.model_version for r in self.replicas)

    @property
    def reload_failed(self) -> bool:
        return bool(self._quarantined) or any(
            r.reload_failed for r in self.replicas
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _candidates(self) -> list[int]:
        """Dispatch order for one request: healthy first, then by policy."""
        with self._lock:
            start = self._rr
            self._rr = (self._rr + 1) % len(self.replicas)
        order = [
            (start + j) % len(self.replicas)
            for j in range(len(self.replicas))
        ]
        order = [i for i in order if i not in self._quarantined]
        if self.config.strategy == "least_loaded":
            # Stable sort: equal pending depths keep rotating.
            order.sort(key=lambda i: self.replicas[i].pending)
        return order

    def _revive(self, index: int) -> bool:
        """Restart a dead replica's dispatcher (unless chaos says not to)."""
        if not self.config.auto_restart:
            return False
        replica = self.replicas[index]
        with self._lock:
            if replica.running:
                return True
            replica.start()
        self._restarts_counter.inc()
        logger.warning("restarted dead replica %s", replica.name)
        return True

    def predict(
        self,
        stations: "list[int] | np.ndarray | None" = None,
        timeout: float | None = None,
    ) -> Forecast:
        """Route one forecast request to a replica, retrying across the fleet.

        Raises :class:`ServiceOverloaded` only when every live replica
        shed the request, with the smallest Retry-After hint offered;
        a request that finds no live replica at all (and auto-restart
        off) raises :class:`ServiceError`.
        """
        self._requests_counter.inc()
        fault_point("fleet.route")
        candidates = self._candidates()
        if not candidates:
            raise ServiceError("all replicas are quarantined")
        retry_hints: list[float] = []
        last_error: BaseException | None = None
        for attempt, index in enumerate(candidates):
            replica = self.replicas[index]
            if not replica.running and not self._revive(index):
                continue
            if attempt:
                self._retries_counter.inc()
            try:
                with trace_span("fleet.route", replica=replica.name,
                                attempt=attempt) as span:
                    forecast = replica.predict(stations, timeout=timeout)
                    span.set(outcome="ok", slot=forecast.slot)
                    return forecast
            except ServiceOverloaded as error:
                retry_hints.append(error.retry_after)
                last_error = error
            except ServiceError as error:
                # Dispatcher died under us (injected crash, stop race):
                # the next candidate gets the request; the dead replica
                # is revived by whichever dispatch notices it next.
                last_error = error
                logger.warning(
                    "replica %s failed a request (%s); rerouting",
                    replica.name, error,
                )
        if retry_hints:
            self._rejected_counter.inc()
            raise ServiceOverloaded(min(retry_hints))
        raise last_error or ServiceError("no live replica accepted the request")

    # ------------------------------------------------------------------
    # Staged reload
    # ------------------------------------------------------------------
    def reload(self, path: "str | Path | None" = None) -> int:
        """Staged checkpoint rollout: canary → shadow check → fan out.

        Returns the fleet-wide model version after full rollout. Raises
        :class:`FleetReloadError` (canary quarantined, incumbents still
        serving the old weights) if the canary's reload or shadow check
        fails. Rollouts serialize on a promotion lock: a concurrent
        reload (operator-triggered, checkpoint watcher, or continual
        promotion) waits for the in-flight one to finish its fan-out
        rather than interleaving canary phases.
        """
        with self._reload_lock:
            candidates = [
                i for i in range(len(self.replicas))
                if i not in self._quarantined
            ]
            if not candidates:
                raise ServiceError("all replicas are quarantined")
            canary = candidates[0]
            reference = self._shadow_reference(candidates[1:])
            try:
                self.replicas[canary].reload(path)
            except BaseException as error:
                raise FleetReloadError(
                    f"canary {self.replicas[canary].name} rejected the "
                    f"checkpoint: {error}"
                ) from error
            try:
                self._shadow_check(canary, reference)
            except BaseException as error:
                self._quarantine(canary)
                raise FleetReloadError(
                    f"canary {self.replicas[canary].name} failed its shadow "
                    f"check and was quarantined: {error}"
                ) from error
            self._reload_stage_counter.inc()
            for index in candidates[1:]:
                self.replicas[index].reload(path)
            logger.info(
                "staged reload complete: %d replicas at model version %d",
                len(candidates), self.replicas[canary].model_version,
            )
            return self.model_version

    def _shadow_reference(self, incumbents: list[int]) -> Forecast | None:
        """An incumbent's full forecast, for relative shadow comparison."""
        if self.config.shadow_tolerance is None or not incumbents:
            return None
        try:
            return self.replicas[incumbents[0]].predict(None)
        except ServiceError:
            return None  # busy/degraded incumbent: finiteness check only

    def _shadow_check(self, canary: int, reference: Forecast | None) -> None:
        """The canary must answer sanely on the new weights.

        Always: an all-finite forecast for the live frontier slot. With
        ``shadow_tolerance``: mean absolute deviation from the incumbent
        forecast, relative to the incumbent's scale, within the bound —
        a cheap stand-in for a full dark-launch comparison window.
        """
        forecast = self.replicas[canary].predict(None)
        demand = np.asarray(forecast.demand)
        supply = np.asarray(forecast.supply)
        if not (np.all(np.isfinite(demand)) and np.all(np.isfinite(supply))):
            raise ServiceError("canary forecast contains non-finite values")
        tolerance = self.config.shadow_tolerance
        if tolerance is None or reference is None:
            return
        ref_d = np.asarray(reference.demand)
        ref_s = np.asarray(reference.supply)
        scale = max(
            float(np.abs(ref_d).mean() + np.abs(ref_s).mean()), 1e-9
        )
        deviation = float(
            np.abs(demand - ref_d).mean() + np.abs(supply - ref_s).mean()
        ) / scale
        if deviation > tolerance:
            raise ServiceError(
                f"canary deviates {deviation:.3f} from incumbents "
                f"(tolerance {tolerance:.3f})"
            )

    def _quarantine(self, index: int) -> None:
        with self._lock:
            self._quarantined.add(index)
            self._quarantine_gauge.set(len(self._quarantined))
        logger.error("quarantined replica %s", self.replicas[index].name)

    def restore_replica(self, index: int) -> None:
        """Lift a quarantine after the replica has been repaired."""
        with self._lock:
            self._quarantined.discard(index)
            self._quarantine_gauge.set(len(self._quarantined))

    @property
    def quarantined(self) -> frozenset[int]:
        return frozenset(self._quarantined)

    # ------------------------------------------------------------------
    # Health / status
    # ------------------------------------------------------------------
    def replica_health(self) -> list[dict]:
        """Per-replica operational snapshot (the ``/replicas`` body)."""
        return [
            {
                "name": replica.name,
                "running": replica.running,
                "pending": replica.pending,
                "model_version": replica.model_version,
                "reload_failed": replica.reload_failed,
                "quarantined": i in self._quarantined,
            }
            for i, replica in enumerate(self.replicas)
        ]

    def status(self) -> dict:
        """Fleet-wide ``/status``: merged SLOs plus the worst replica.

        The ``slo`` block is :func:`repro.obs.slo.aggregate_slos` output
        — fleet objectives over bucket-summed latency histograms and
        summed counters, per-replica verdicts, and ``worst_replica`` —
        so a single poller sees both "is the fleet healthy" and "which
        replica do I look at first".
        """
        slo = aggregate_slos(
            self.replicas[0].config.slo,
            prefixes=[r.name for r in self.replicas],
            qualities={
                r.name: r.quality for r in self.replicas
                if r.quality is not None
            },
        )
        return {
            "status": "ok" if slo["healthy"] else "degraded",
            "frontier": self.store.frontier,
            "warmed_up": self.store.warmed_up,
            "model_version": self.model_version,
            "dispatcher_running": self.running,
            "reload_failed": self.reload_failed,
            "shards": getattr(self.store, "num_shards", 1),
            "replicas": self.replica_health(),
            "slo": slo,
            "trace": trace_status(),
            "quality": None,
        }


def _clone_model(model: STGNNDJD) -> STGNNDJD:
    """An independent copy of the model for one replica.

    Replicas must not share parameter storage: a staged reload swaps
    one replica's weights while the others keep serving the old ones.
    """
    clone = STGNNDJD(model.config, rng=np.random.default_rng(0))
    for dst, src in zip(clone.parameters(), model.parameters()):
        dst.data[...] = src.data
    clone.eval()
    return clone


class FleetHandler(ServingHandler):
    """The serving handler plus fleet introspection endpoints."""

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] == "/replicas":
            self._send_json(200, {
                "replicas": self.server.service.replica_health()
            })
            return
        super().do_GET()


def make_fleet_server(
    router: FleetRouter, host: str = "127.0.0.1", port: int = 0
) -> ServingHTTPServer:
    """Bind the fleet behind the standard serving HTTP surface."""
    return ServingHTTPServer((host, port), router, handler=FleetHandler)

"""Fleet-scale serving: sharded flow state behind replicated inference.

``shard`` partitions the city's :class:`~repro.serve.state.FlowStateStore`
into K station shards whose reassembled tensors are bitwise equal to
the single-store build; ``router`` runs N
:class:`~repro.serve.service.PredictionService` replicas over that
shared state behind the stdlib HTTP front end, with least-loaded
dispatch, replica health/restart, overload shedding, and staged
checkpoint rollout. ``benchmarks/loadgen.py`` drives the whole stack
with a million-event open-loop replay under fault injection.
"""

from repro.serve.fleet.router import (
    FleetConfig,
    FleetHandler,
    FleetReloadError,
    FleetRouter,
    make_fleet_server,
)
from repro.serve.fleet.shard import ShardedFlowStore, ShardMap

__all__ = [
    "FleetConfig",
    "FleetHandler",
    "FleetReloadError",
    "FleetRouter",
    "ShardMap",
    "ShardedFlowStore",
    "make_fleet_server",
]

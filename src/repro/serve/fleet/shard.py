"""Station-sharded flow state: city → K shards, one coherent clock.

A single :class:`~repro.serve.state.FlowStateStore` holds the whole
city's ``(H + 1, n, n)`` flow rings — at the paper's 571-station scale
that is gigabytes of hot state in one process. The fleet tier
partitions it: a :class:`ShardMap` assigns every station to one of ``K``
shards (balanced contiguous blocks), and :class:`ShardedFlowStore`
holds ``K`` row-partitioned stores whose rings are ``(H + 1, n_k, n)``,
``sum(n_k) == n`` — the same total state, split into independently
placeable pieces.

Routing
-------
A trip ``o -> d`` decomposes into exactly two sub-updates: the outflow
cell ``(o, d)`` at the checkout slot (owned by ``shard(o)``) and the
inflow cell ``(d, o)`` at the return slot (owned by ``shard(d)``). The
sharded store runs the ingest chaos seams and validation **once**, then
delivers the event to the origin shard and — when different — the
destination shard through
:meth:`~repro.serve.state.FlowStateStore.apply_event`, which applies
only the sub-updates landing in rows the shard owns.

Coherent slot clocks
--------------------
All shards share one frontier. Rollover goes through
:meth:`ShardedFlowStore.advance_to`, which advances every shard under
the fleet lock; the fleet frontier is the *minimum* shard frontier, so
a rollover torn mid-way by an injected fault (some shards advanced,
some not) leaves the fleet conservatively behind and the next advance
heals it — laggards catch up, already-advanced shards no-op, and
pending inflow folds into each ring exactly once either way.

Bitwise reassembly
------------------
Every flow cell is owned by exactly one shard and receives its
``+= 1.0`` updates in the same per-cell order the single store would
apply them (float64 integer sums are exact regardless of order, and
unowned cells stay exactly ``0.0``). Scattering the K row blocks back
into a full-city tensor therefore reproduces the unpartitioned store
**bitwise** — the property ``tests/serve/test_fleet_shard.py`` pins
over out-of-order, dirty, late-heavy streams for K ∈ {1, 2, 7}.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.data.dataset import BikeShareDataset, FlowSample
from repro.data.records import TripRecord
from repro.faults import fault_point, fault_transform
from repro.obs.registry import default_registry
from repro.serve.state import FlowStateConfig, FlowStateStore


class ShardMap:
    """Deterministic station → shard assignment in balanced blocks.

    Stations are split into ``num_shards`` contiguous blocks (the first
    ``n % K`` blocks get one extra station), so a shard's rows are a
    basic slice of the full-city row axis — scatter/gather is plain
    block copies, and ``shard_of`` is one ``searchsorted``.
    """

    def __init__(self, num_stations: int, num_shards: int) -> None:
        if num_stations < 1:
            raise ValueError(f"num_stations must be >= 1, got {num_stations}")
        if not 1 <= num_shards <= num_stations:
            raise ValueError(
                f"num_shards must be in 1..{num_stations} (one station per "
                f"shard minimum), got {num_shards}"
            )
        self.num_stations = num_stations
        self.num_shards = num_shards
        base, extra = divmod(num_stations, num_shards)
        sizes = [base + 1] * extra + [base] * (num_shards - extra)
        self._bounds = np.concatenate(([0], np.cumsum(sizes)))

    def shard_of(self, station: int) -> int:
        """The shard owning ``station``."""
        if not 0 <= station < self.num_stations:
            raise ValueError(
                f"station must be in 0..{self.num_stations - 1}, got {station}"
            )
        return int(np.searchsorted(self._bounds, station, side="right")) - 1

    def stations(self, shard: int) -> np.ndarray:
        """Global station ids owned by ``shard`` (a contiguous block)."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard must be in 0..{self.num_shards - 1}, got {shard}"
            )
        return np.arange(self._bounds[shard], self._bounds[shard + 1])

    def sizes(self) -> list[int]:
        return list(np.diff(self._bounds))

    def __len__(self) -> int:
        return self.num_shards

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardMap)
            and other.num_stations == self.num_stations
            and other.num_shards == self.num_shards
        )

    def __repr__(self) -> str:
        return (
            f"ShardMap(stations={self.num_stations}, shards={self.num_shards}, "
            f"sizes={self.sizes()})"
        )


class ShardedFlowStore:
    """K row-partitioned flow stores behind the single-store interface.

    Duck-types the :class:`~repro.serve.state.FlowStateStore` surface
    the serving stack consumes — ``config``/``frontier``/``version``/
    ``warmed_up``/``ingest``/``ingest_event``/``advance_to``/``sample``/
    ``realized``/``retained_tensors``/``add_rollover_listener`` — so a
    :class:`~repro.serve.service.PredictionService` (or a whole replica
    fleet) runs unchanged on top of it.
    """

    def __init__(
        self,
        config: FlowStateConfig,
        num_shards: int = 2,
        frontier: int = 0,
        shard_map: ShardMap | None = None,
        _warm_dataset: BikeShareDataset | None = None,
    ) -> None:
        self.config = config
        n = config.num_stations
        self.map = shard_map or ShardMap(n, num_shards)
        if self.map.num_stations != n:
            raise ValueError(
                f"shard map covers {self.map.num_stations} stations, "
                f"store has {n}"
            )
        self._lock = threading.RLock()
        self.shards: list[FlowStateStore] = []
        for k in range(self.map.num_shards):
            owned = self.map.stations(k)
            prefix = f"serve.shard{k}"
            if _warm_dataset is not None:
                shard = FlowStateStore.from_dataset(
                    _warm_dataset,
                    frontier=frontier,
                    late_policy=config.late_policy,
                    owned_stations=owned,
                    metric_prefix=prefix,
                    retained_slots=config.retained_slots,
                )
            else:
                shard = FlowStateStore(
                    config, frontier=frontier,
                    owned_stations=owned, metric_prefix=prefix,
                )
            self.shards.append(shard)
        self._zero_target = np.zeros(n)
        self._zero_target.setflags(write=False)
        obs = default_registry()
        self._events_counter = obs.counter("fleet.ingest_events")
        self._late_dropped_counter = obs.counter("fleet.ingest_dropped_late")
        self._cross_shard_counter = obs.counter("fleet.cross_shard_events")
        self._rollover_counter = obs.counter("fleet.rollovers")
        self._frontier_gauge = obs.gauge("fleet.frontier")
        self._listeners: list = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(
        cls,
        dataset: BikeShareDataset,
        num_shards: int = 2,
        frontier: int | None = None,
        late_policy: str = "drop",
        retained_slots: int | None = None,
    ) -> "ShardedFlowStore":
        """Warm-start every shard from a dataset's flow history."""
        config = FlowStateConfig.for_dataset(
            dataset, late_policy=late_policy, retained_slots=retained_slots
        )
        frontier = dataset.num_slots if frontier is None else frontier
        return cls(
            config, num_shards=num_shards, frontier=frontier,
            _warm_dataset=dataset,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.map.num_shards

    @property
    def frontier(self) -> int:
        """The coherent fleet frontier: the minimum shard frontier.

        Equal across shards except transiently inside a torn rollover;
        taking the minimum keeps reads conservative until the next
        advance heals the stragglers.
        """
        return min(shard.frontier for shard in self.shards)

    @property
    def horizon(self) -> int:
        return self.config.horizon

    @property
    def oldest_retained(self) -> int:
        return max(0, self.frontier - self.config.retention)

    @property
    def warmed_up(self) -> bool:
        return all(shard.warmed_up for shard in self.shards)

    @property
    def version(self) -> int:
        """Monotonic change counter: the sum of shard versions."""
        return sum(shard.version for shard in self.shards)

    @property
    def coherent(self) -> bool:
        """Whether every shard sits at the same frontier slot."""
        fronts = {shard.frontier for shard in self.shards}
        return len(fronts) == 1

    def __repr__(self) -> str:
        return (
            f"ShardedFlowStore(stations={self.config.num_stations}, "
            f"shards={self.num_shards}, frontier={self.frontier}, "
            f"version={self.version})"
        )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, trip: TripRecord) -> bool:
        """Fold one trip into the sharded state; ``False`` if late-dropped."""
        return self.ingest_event(
            trip.origin, trip.destination, trip.start_time, trip.end_time
        )

    def ingest_event(
        self,
        origin: int,
        destination: int,
        start_time: float,
        end_time: float,
    ) -> bool:
        """Route one event to its origin and destination shards.

        Runs the same per-event chaos seams (``state.ingest``,
        ``state.clock``) exactly once — shard delivery goes through
        :meth:`FlowStateStore.apply_event`, which skips them — so a
        chaos plan written against the single store fires identically
        against the fleet.
        """
        # Same seam-then-validate order as the single store, so a chaos
        # plan's per-event firing counts line up exactly.
        fault_point("state.ingest")
        start_time, end_time = fault_transform(
            "state.clock", (start_time, end_time)
        )
        n = self.config.num_stations
        if not (0 <= origin < n and 0 <= destination < n):
            raise ValueError(
                f"station ids must be in 0..{n - 1}, got {origin}->{destination}"
            )
        start_slot = int(start_time // self.config.slot_seconds)
        if start_slot < 0:
            raise ValueError(f"event starts before slot 0 (start_time={start_time})")
        with self._lock:
            if start_slot > self.frontier:
                self.advance_to(start_slot)
            primary = self.map.shard_of(origin)
            secondary = self.map.shard_of(destination)
            accepted = self.shards[primary].apply_event(
                origin, destination, start_time, end_time
            )
            if secondary != primary:
                self.shards[secondary].apply_event(
                    origin, destination, start_time, end_time
                )
                self._cross_shard_counter.inc()
            if accepted:
                self._events_counter.inc()
            else:
                self._late_dropped_counter.inc()
            return accepted

    # ------------------------------------------------------------------
    # Rollover
    # ------------------------------------------------------------------
    def advance_to(self, slot: int) -> None:
        """Advance every shard to ``slot`` under one lock.

        Also the self-healing path: if a previous advance was torn by a
        fault (shard frontiers diverged), the target is raised to the
        highest shard frontier so stragglers catch up instead of the
        advanced shards failing the "cannot advance backwards" check.
        """
        with self._lock:
            fronts = [shard.frontier for shard in self.shards]
            old = min(fronts)
            if slot < old:
                raise ValueError(
                    f"cannot advance backwards: frontier={old}, got {slot}"
                )
            target = max(slot, max(fronts))
            if target == old:
                return
            fault_point("fleet.rollover")
            for shard in self.shards:
                if shard.frontier < target:
                    shard.advance_to(target)
            self._rollover_counter.inc(target - old)
            self._frontier_gauge.set(target)
            if self._listeners:
                closed = range(old, target)
                for listener in self._listeners:
                    listener(self, closed)

    def add_rollover_listener(self, listener) -> None:
        """Register ``fn(store, closed_slots)`` on fleet-level advances."""
        with self._lock:
            self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Reads (full-city assembly)
    # ------------------------------------------------------------------
    def realized(self, slot: int) -> tuple[np.ndarray, np.ndarray]:
        """Full-city realized ``(demand, supply)`` for a retained slot."""
        slot = int(slot)
        n = self.config.num_stations
        with self._lock:
            self._heal()
            if not self.oldest_retained <= slot <= self.frontier:
                raise IndexError(
                    f"slot {slot} is not retained "
                    f"({self.oldest_retained}..{self.frontier})"
                )
            demand = np.empty(n)
            supply = np.empty(n)
            for shard in self.shards:
                d, s = shard.realized(slot)
                demand[shard.owned_selector] = d
                supply[shard.owned_selector] = s
            return demand, supply

    def sample(self) -> FlowSample:
        """The model input for the frontier slot, assembled across shards.

        Bitwise equal to the single store's :meth:`FlowStateStore.sample`
        over the same event history. Unlike the single store (one
        dispatcher, reusable buffers), a sharded store feeds *N replica
        dispatchers concurrently* — each call assembles into fresh
        arrays so one replica's forward never reads windows another
        replica is mid-overwrite on. The allocation only happens on
        forecast-cache misses, so it is off the hot path.
        """
        config = self.config
        n = config.num_stations
        with self._lock:
            self._heal()
            t = self.frontier
            if t < config.horizon:
                raise IndexError(
                    f"frontier {t} has incomplete history windows "
                    f"(need at least {config.horizon} finalized slots)"
                )
            k, d, spd = config.short_window, config.long_days, config.slots_per_day
            short_slots = np.arange(t - k, t)
            long_slots = np.arange(t - d * spd, t, spd)
            short_in = np.empty((k, n, n))
            short_out = np.empty((k, n, n))
            long_in = np.empty((d, n, n))
            long_out = np.empty((d, n, n))
            for shard in self.shards:
                shard.scatter_window(short_slots, short_in, short_out)
                shard.scatter_window(long_slots, long_in, long_out)
            return FlowSample(
                t=t,
                short_inflow=short_in,
                short_outflow=short_out,
                long_inflow=long_in,
                long_outflow=long_out,
                target_demand=self._zero_target,
                target_supply=self._zero_target,
            )

    def retained_tensors(self) -> tuple[int, np.ndarray, np.ndarray]:
        """``(first_slot, inflow, outflow)`` reassembled across shards.

        ``(m, n, n)`` full-city copies, bitwise equal to the single
        store's retained tensors over the same history.
        """
        n = self.config.num_stations
        with self._lock:
            self._heal()
            first = self.oldest_retained
            slots = np.arange(first, self.frontier + 1)
            inflow = np.empty((len(slots), n, n))
            outflow = np.empty((len(slots), n, n))
            for shard in self.shards:
                shard.scatter_window(slots, inflow, outflow)
            return first, inflow, outflow

    def history_window(
        self, slots: int | None = None, end: int | None = None
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """Full-city training tensors assembled across shards.

        Same contract as :meth:`FlowStateStore.history_window` —
        finalized slots only, bitwise equal to ``build_flow_tensors``
        rows — with the K row blocks scattered back into one
        ``(m, n, n)`` pair under the fleet lock.
        """
        n = self.config.num_stations
        with self._lock:
            self._heal()
            stop = self.frontier if end is None else int(end)
            if not 0 <= stop <= self.frontier:
                raise ValueError(
                    f"end must be in 0..{self.frontier} (the frontier), got {stop}"
                )
            if slots is None:
                start = min(stop, self.oldest_retained)
            else:
                if slots < 0:
                    raise ValueError(f"slots must be >= 0, got {slots}")
                start = stop - int(slots)
            if start < self.oldest_retained and start < stop:
                raise ValueError(
                    f"history window {start}..{stop} reaches behind the oldest "
                    f"retained slot {self.oldest_retained}; raise "
                    f"FlowStateConfig.retained_slots to keep a deeper history"
                )
            slot_ids = np.arange(start, stop)
            inflow = np.empty((len(slot_ids), n, n))
            outflow = np.empty((len(slot_ids), n, n))
            for shard in self.shards:
                shard.scatter_window(slot_ids, inflow, outflow)
            return start, inflow, outflow

    def _heal(self) -> None:
        # Called under the fleet lock before any assembled read: a torn
        # advance leaves shards at mixed frontiers, and assembling rows
        # across mixed clocks would mix slot generations.
        if not self.coherent:
            self.advance_to(max(shard.frontier for shard in self.shards))

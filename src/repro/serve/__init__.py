"""Online serving: incremental flow state, micro-batching, HTTP front end.

The offline pipeline trains on a frozen trip log; this package is the
online half of the paper's train-offline/predict-online deployment
story (Sec. VII-I), built in three layers:

* :mod:`repro.serve.state` — :class:`FlowStateStore` ingests individual
  trip events and incrementally maintains the short-/long-term flow
  windows the model samples, bitwise-equivalent to the batch
  :func:`~repro.data.flows.build_flow_tensors` path.
* :mod:`repro.serve.service` — :class:`PredictionService` wraps a
  loaded STGNN-DJD behind the forward-only fast path with request
  micro-batching, bounded-queue backpressure, a per-slot forecast
  cache, and atomic checkpoint hot-reload.
* :mod:`repro.serve.http` — a stdlib ``ThreadingHTTPServer`` exposing
  ``/predict``, ``/ingest``, ``/healthz``, ``/metrics`` and
  ``/admin/reload``; ``python -m repro.serve`` boots it from the
  command line.
* :mod:`repro.serve.fleet` — the scale-out tier: K-way station-sharded
  flow state (bitwise-equal reassembly) behind N replicated prediction
  services and a front-of-fleet router; ``python -m repro.serve
  --shards K --replicas N`` boots a fleet behind the same HTTP surface.

Quickstart (in-process)::

    from repro.serve import PredictionService, ServiceConfig

    service = PredictionService.for_dataset(model, dataset)
    with service:
        service.store.ingest(trip)           # stream events in
        forecast = service.predict([3, 7])   # bikes, next slot
"""

from repro.serve.state import FlowStateConfig, FlowStateStore, LateEventError
from repro.serve.service import (
    Forecast,
    PredictionService,
    ReplicaCrash,
    ServiceConfig,
    ServiceError,
    ServiceOverloaded,
    ServiceStopped,
)
from repro.serve.http import ServingHTTPServer, make_server
from repro.serve.fleet import (
    FleetConfig,
    FleetReloadError,
    FleetRouter,
    ShardedFlowStore,
    ShardMap,
    make_fleet_server,
)

__all__ = [
    "FleetConfig",
    "FleetReloadError",
    "FleetRouter",
    "FlowStateConfig",
    "FlowStateStore",
    "LateEventError",
    "Forecast",
    "PredictionService",
    "ReplicaCrash",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceStopped",
    "ServingHTTPServer",
    "ShardMap",
    "ShardedFlowStore",
    "make_fleet_server",
    "make_server",
]

"""The prediction service: micro-batching, backpressure, hot-reload.

:class:`PredictionService` turns a trained :class:`~repro.core.STGNNDJD`
plus a :class:`~repro.serve.state.FlowStateStore` into an online
forecaster. Three serving concerns live here, all dependency-free:

* **Micro-batching** — STGNN-DJD predicts *every* station in one
  forward pass, so N concurrent requests for the same slot need one
  model call, not N. Requests enter a bounded queue; a single
  dispatcher thread drains up to ``max_batch`` of them (waiting at most
  ``batch_wait_seconds`` for stragglers), runs the forward once, and
  fans the per-station rows back out. A per-slot forecast cache keyed
  on ``(frontier, store.version, model_version)`` extends the batching
  window across dispatches: the cache invalidates itself the moment a
  rollover or late event changes the input windows, or a reload changes
  the weights.
* **Backpressure** — the admission queue is bounded. When it is full
  the service *rejects* with :class:`ServiceOverloaded` (carrying a
  ``retry_after`` hint) instead of queueing unboundedly; the HTTP layer
  maps this to ``503 Retry-After``.
* **Checkpoint hot-reload** — :meth:`PredictionService.reload` loads a
  checkpoint via :func:`repro.core.persistence.load_stgnn` (schema
  version checked, see ``persistence.py``), validates it against the
  store's dimensions, and swaps the model reference atomically.
  In-flight batches keep the reference they grabbed, so they finish on
  the old weights; the next dispatch picks up the new ones. A failed
  reload (missing, corrupt/mid-write, schema-mismatched or
  wrong-dimension checkpoint) raises — or is counted and logged by the
  background watcher — and the old model keeps serving.
* **Degraded serving** — failures answer requests anyway, honestly
  flagged. While the checkpoint on disk cannot be loaded (a torn or
  corrupt write), responses keep coming from the old weights with
  ``stale=True`` until a good checkpoint lands. If the model forward
  itself fails (e.g. an injected dispatcher fault), the service falls
  back to the last finalized forecast, again with ``stale=True``, and
  counts it in ``serve.stale_served``. The chaos suite
  (``tests/faults/test_serve_chaos.py``) drives both paths.

The request path never touches global RNG state: the model runs in eval
mode (dropout is identity) on the forward-only fast path, and all
scratch memory comes from a service-owned :class:`~repro.backend.BufferPool`.
``tests/serve/test_rng_isolation.py`` pins this down.
"""

from __future__ import annotations

import dataclasses
import os
import queue
import random
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import backend
from repro.core.model import STGNNDJD
from repro.core.persistence import load_quality_baseline, load_stgnn
from repro.data.dataset import BikeShareDataset
from repro.data.normalize import MinMaxNormalizer
from repro.faults import fault_point
from repro.obs.profiler import profile
from repro.obs.quality import QualityConfig, QualityMonitor
from repro.obs.registry import default_registry
from repro.obs.slo import SLOConfig, evaluate_slos
from repro.obs.trace import (
    current_context,
    record_span,
    trace_config,
    trace_span,
    trace_status,
    tracing_enabled,
)
from repro.serve.state import FlowStateStore
from repro.tensor import inference_mode
from repro.utils import get_logger

logger = get_logger("serve")


class ServiceError(RuntimeError):
    """Base class for serving failures."""


class ServiceOverloaded(ServiceError):
    """The admission queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"admission queue full, retry after {retry_after:.3f}s"
        )
        self.retry_after = retry_after


class ServiceStopped(ServiceError):
    """The service stopped before the request completed."""


class ReplicaCrash(ServiceError):
    """An injected replica crash: kills the dispatcher thread.

    The process-level ``crash`` fault action is ``os._exit`` — unusable
    for killing *one* replica of an in-process fleet. Injecting this
    exception at a replica's dispatch seam (``fleet.replica{i}.dispatch``)
    instead fails the in-flight batch and then tears down the dispatcher
    thread, so the replica goes ``running=False`` mid-traffic and the
    router has to route around it and restart it.
    """


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Serving knobs.

    ``max_batch``/``batch_wait_seconds`` bound the micro-batch window:
    the dispatcher never coalesces more requests than ``max_batch`` and
    never delays the first request of a batch longer than the wait.
    ``queue_depth`` bounds admission; ``request_timeout_seconds`` bounds
    how long a caller blocks on its result. ``cache=False`` disables the
    per-slot forecast cache (used by the benchmark's unbatched
    baseline). ``checkpoint_path`` + ``reload_poll_seconds`` arm the
    background checkpoint watcher. ``quality`` arms continuous
    forecast-quality monitoring (forecasts reconciled against realized
    flows on slot rollover); ``slo`` declares the objectives the
    ``/status`` endpoint evaluates.

    ``name`` prefixes the service's metric names and fault sites
    (``{name}.requests``, ``{name}.dispatch``, ...). The default
    ``"serve"`` preserves the historical names; a fleet names each
    replica ``fleet.replica{i}`` so per-replica traffic, faults, and
    SLOs stay distinguishable in one shared registry.

    ``retry_jitter`` bounds the randomized fraction added to the
    ``Retry-After`` hint on overload: the advertised delay is drawn
    uniformly from ``[retry_after_seconds,
    retry_after_seconds * (1 + retry_jitter)]``, decorrelating
    synchronized clients that would otherwise retry in lockstep.
    ``0`` restores the fixed hint.
    """

    max_batch: int = 64
    batch_wait_seconds: float = 0.002
    queue_depth: int = 256
    retry_after_seconds: float = 0.05
    retry_jitter: float = 0.5
    request_timeout_seconds: float = 30.0
    cache: bool = True
    checkpoint_path: str | None = None
    reload_poll_seconds: float | None = None
    quality: QualityConfig | None = None
    slo: SLOConfig | None = None
    name: str = "serve"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_wait_seconds < 0:
            raise ValueError("batch_wait_seconds must be >= 0")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError(
                f"retry_jitter must be in 0..1, got {self.retry_jitter}"
            )
        if not self.name:
            raise ValueError("name must be a non-empty metric/fault prefix")
        if self.reload_poll_seconds is not None and self.reload_poll_seconds <= 0:
            raise ValueError("reload_poll_seconds must be positive when set")
        if self.reload_poll_seconds is not None and self.checkpoint_path is None:
            raise ValueError("reload_poll_seconds requires checkpoint_path")


@dataclass(frozen=True, slots=True)
class Forecast:
    """One answered prediction request, in denormalised bikes."""

    slot: int
    stations: np.ndarray  # (s,) station ids the rows refer to
    demand: np.ndarray  # (s,) or (s, horizon)
    supply: np.ndarray  # (s,) or (s, horizon)
    model_version: int
    cached: bool  # served from the per-slot forecast cache
    # Degraded-mode marker: True when this answer comes from weights
    # known to lag the checkpoint on disk (a reload failed) or is the
    # last finalized forecast re-served after a forward failure.
    stale: bool = False


class _Request:
    """A queued prediction request and its completion rendezvous.

    Carries the requester's trace context across the queue (contextvars
    do not follow objects between threads) plus the enqueue/dequeue
    stamps from which the queue-wait span is reconstructed after the
    rendezvous completes.
    """

    __slots__ = ("stations", "done", "forecast", "error",
                 "trace_ctx", "enqueued_ts", "enqueued_perf", "dequeued_perf")

    def __init__(self, stations: np.ndarray | None) -> None:
        self.stations = stations
        self.done = threading.Event()
        self.forecast: Forecast | None = None
        self.error: BaseException | None = None
        self.trace_ctx = None
        self.enqueued_ts = 0.0
        self.enqueued_perf = 0.0
        self.dequeued_perf = 0.0


class PredictionService:
    """Online forecaster over a flow-state store and a loaded model."""

    def __init__(
        self,
        model: STGNNDJD,
        store: FlowStateStore,
        demand_normalizer: MinMaxNormalizer,
        supply_normalizer: MinMaxNormalizer,
        config: ServiceConfig | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.store = store
        self._check_compatible(model)
        model.eval()
        self._model = model
        self._model_version = 0
        self.demand_normalizer = demand_normalizer
        self.supply_normalizer = supply_normalizer
        self._queue: queue.Queue[_Request | None] = queue.Queue(
            maxsize=self.config.queue_depth
        )
        self._pool = backend.BufferPool()
        self._cache: dict[tuple[int, int, int], tuple[np.ndarray, np.ndarray]] = {}
        self._cache_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._dispatcher: threading.Thread | None = None
        self._watcher: threading.Thread | None = None
        self._stop = threading.Event()
        self._checkpoint_mtime: float | None = None
        # Degraded-mode state: the last successfully computed all-station
        # forecast (re-served stale when a forward fails) and whether the
        # newest reload attempt failed (weights lag the disk checkpoint).
        self._last_good: Forecast | None = None
        self._reload_failed = False
        #: Signalled on every successful / failed reload attempt — the
        #: condition tests (and operators) wait on instead of polling.
        self.reload_ok_event = threading.Event()
        self.reload_error_event = threading.Event()
        obs = default_registry()
        self._obs = obs
        name = self.config.name
        self.name = name
        # Fault sites carry the same prefix as metrics: the default
        # "serve.dispatch"/"serve.forecast"/"serve.reload" sites stay,
        # and a fleet replica exposes fleet.replica{i}.* instead.
        self._dispatch_site = f"{name}.dispatch"
        self._forecast_site = f"{name}.forecast"
        self._reload_site = f"{name}.reload"
        # Deterministic per-service jitter stream for Retry-After hints:
        # seeded from the service name so replicas decorrelate from each
        # other without ever touching global RNG state (request-path
        # purity is pinned by tests/serve/test_rng_isolation.py).
        self._retry_rng = random.Random(zlib.crc32(name.encode()))
        self._requests_counter = obs.counter(f"{name}.requests")
        self._rejected_counter = obs.counter(f"{name}.rejected")
        self._batch_size_hist = obs.histogram(f"{name}.batch_size")
        self._queue_depth_gauge = obs.gauge(f"{name}.queue_depth")
        self._cache_hits = obs.counter(f"{name}.cache_hits")
        self._cache_misses = obs.counter(f"{name}.cache_misses")
        self._reload_counter = obs.counter(f"{name}.reloads")
        self._reload_errors = obs.counter(f"{name}.reload_errors")
        self._stale_counter = obs.counter(f"{name}.stale_served")
        self._request_timer = obs.timer(f"{name}.request_seconds")
        # Continuous quality monitoring: capture forecasts as they are
        # issued and reconcile them when the store closes their slot.
        self.quality: QualityMonitor | None = None
        if self.config.quality is not None:
            self.quality = QualityMonitor(self.config.quality, registry=obs)
            store.add_rollover_listener(self.quality.on_rollover)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_dataset(
        cls,
        model: STGNNDJD,
        dataset: BikeShareDataset,
        config: ServiceConfig | None = None,
        frontier: int | None = None,
    ) -> "PredictionService":
        """Serve ``model`` continuing where a dataset's history ends.

        The store is warm-started from the dataset's flow tensors and
        the normalizers are the dataset's train-split scalers — the same
        pair the model was trained against.
        """
        store = FlowStateStore.from_dataset(dataset, frontier=frontier)
        return cls(
            model,
            store,
            dataset.demand_normalizer,
            dataset.supply_normalizer,
            config=config,
        )

    @classmethod
    def from_checkpoint(
        cls,
        path: str | Path,
        store: FlowStateStore,
        demand_normalizer: MinMaxNormalizer,
        supply_normalizer: MinMaxNormalizer,
        config: ServiceConfig | None = None,
    ) -> "PredictionService":
        """Boot a service from a checkpoint file (schema-checked).

        When quality monitoring is armed without an explicit baseline,
        the training-time baseline embedded in the checkpoint (if any)
        is adopted, so drift detection works out of the box.
        """
        if config is None:
            config = ServiceConfig(checkpoint_path=str(path))
        elif config.checkpoint_path is None:
            config = dataclasses.replace(config, checkpoint_path=str(path))
        if config.quality is not None and config.quality.baseline is None:
            baseline = load_quality_baseline(path)
            if baseline is not None:
                config = dataclasses.replace(
                    config,
                    quality=dataclasses.replace(
                        config.quality, baseline=baseline
                    ),
                )
        service = cls(
            load_stgnn(path), store, demand_normalizer, supply_normalizer, config
        )
        service._checkpoint_mtime = _mtime(config.checkpoint_path)
        return service

    def _check_compatible(self, model: STGNNDJD) -> None:
        expected = (
            self.store.config.num_stations,
            self.store.config.short_window,
            self.store.config.long_days,
        )
        got = (
            model.config.num_stations,
            model.config.short_window,
            model.config.long_days,
        )
        if expected != got:
            raise ServiceError(
                f"model (stations, k, d)={got} does not match the "
                f"flow store's {expected}"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._dispatcher is not None and self._dispatcher.is_alive()

    @property
    def model_version(self) -> int:
        return self._model_version

    @property
    def reload_failed(self) -> bool:
        """Whether the newest reload attempt failed (weights lag the disk)."""
        return self._reload_failed

    @property
    def pending(self) -> int:
        """Requests admitted but not yet answered (the router's load signal)."""
        return self._queue.qsize()

    def _next_retry_after(self) -> float:
        """The jittered Retry-After hint for one overload rejection."""
        base = self.config.retry_after_seconds
        jitter = self.config.retry_jitter
        if jitter <= 0.0:
            return base
        return base * (1.0 + jitter * self._retry_rng.random())

    def status(self) -> dict:
        """Operational summary: SLO health, tracing, quality windows.

        The JSON body behind ``GET /status``. SLOs are evaluated from
        the live metric registry against ``config.slo`` (defaults when
        unset); quality is ``None`` until monitoring is armed.
        """
        slo = evaluate_slos(
            self.config.slo, registry=self._obs, quality=self.quality,
            prefix=self.name,
        )
        return {
            "status": "ok" if slo["healthy"] else "degraded",
            "frontier": self.store.frontier,
            "warmed_up": self.store.warmed_up,
            "model_version": self._model_version,
            "dispatcher_running": self.running,
            "reload_failed": self._reload_failed,
            "slo": slo,
            "trace": trace_status(),
            "quality": None if self.quality is None else self.quality.snapshot(),
        }

    def start(self) -> "PredictionService":
        """Spawn the dispatcher (and the checkpoint watcher, if armed)."""
        if self.running:
            return self
        self._stop.clear()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name=f"{self.name}-dispatcher", daemon=True,
        )
        self._dispatcher.start()
        if self.config.reload_poll_seconds is not None:
            if self._checkpoint_mtime is None:
                self._checkpoint_mtime = _mtime(self.config.checkpoint_path)
            self._watcher = threading.Thread(
                target=self._watch_loop, name="serve-reload-watcher", daemon=True
            )
            self._watcher.start()
        return self

    def stop(self) -> None:
        """Stop the dispatcher; queued requests fail with ServiceStopped."""
        if not self.running:
            return
        self._stop.set()
        try:
            self._queue.put_nowait(None)  # wake the dispatcher
        except queue.Full:
            pass  # dispatcher polls _stop every 100ms; no need to block
        self._dispatcher.join(timeout=5.0)
        self._dispatcher = None
        if self._watcher is not None:
            self._watcher.join(timeout=5.0)
            self._watcher = None
        # Fail anything still queued rather than leaving callers hanging.
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            if request is not None:
                request.error = ServiceStopped("service stopped")
                request.done.set()

    def __enter__(self) -> "PredictionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def predict(
        self,
        stations: "list[int] | np.ndarray | None" = None,
        timeout: float | None = None,
    ) -> Forecast:
        """Forecast demand/supply for the current frontier slot.

        ``stations=None`` returns every station. With the dispatcher
        running the request is queued and micro-batched; otherwise it is
        served synchronously on the calling thread — a single-threaded
        convenience for scripts and tests that never ``start()`` the
        service (concurrent callers must go through the dispatcher).
        """
        start = time.perf_counter()
        stations_idx = None if stations is None else np.asarray(stations, dtype=int)
        if stations_idx is not None and stations_idx.size:
            n = self.store.config.num_stations
            if stations_idx.min() < 0 or stations_idx.max() >= n:
                raise ValueError(f"station ids must be in 0..{n - 1}")
        self._requests_counter.inc()
        if not self.running:
            forecast = self._answer(self._model, self._model_version, stations_idx)
            self._request_timer.observe(time.perf_counter() - start)
            return forecast
        request = _Request(stations_idx)
        if tracing_enabled():
            ctx = current_context()
            if ctx is not None and ctx.sampled:
                # Stamp the enqueue so the queue-wait interval can be
                # recorded as a span once the dispatcher has answered.
                # Unsampled (or context-free) requests skip the clock
                # reads entirely — they could never record the span.
                request.trace_ctx = ctx
                request.enqueued_ts = time.time()
                request.enqueued_perf = time.perf_counter()
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._rejected_counter.inc()
            raise ServiceOverloaded(self._next_retry_after()) from None
        if self._obs.enabled:
            self._queue_depth_gauge.set(self._queue.qsize())
        timeout = self.config.request_timeout_seconds if timeout is None else timeout
        if not request.done.wait(timeout):
            raise ServiceError(f"request timed out after {timeout}s")
        if request.trace_ctx is not None and request.dequeued_perf:
            record_span(
                "serve.queue", request.trace_ctx, request.enqueued_ts,
                request.dequeued_perf - request.enqueued_perf,
            )
        if request.error is not None:
            raise request.error
        self._request_timer.observe(time.perf_counter() - start)
        return request.forecast

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if first is None:
                continue
            assemble_ts = time.time()
            assemble_perf = time.perf_counter()
            first.dequeued_perf = assemble_perf
            batch = [first]
            deadline = time.monotonic() + self.config.batch_wait_seconds
            while len(batch) < self.config.max_batch:
                remaining = deadline - time.monotonic()
                try:
                    nxt = (
                        self._queue.get_nowait()
                        if remaining <= 0
                        else self._queue.get(timeout=remaining)
                    )
                except queue.Empty:
                    break
                if nxt is None:
                    break
                nxt.dequeued_perf = time.perf_counter()
                batch.append(nxt)
            self._batch_size_hist.observe(len(batch))
            if self._obs.enabled:
                self._queue_depth_gauge.set(self._queue.qsize())
            # One reference for the whole batch: a concurrent reload
            # swaps self._model but cannot affect these requests.
            model, version = self._model, self._model_version
            # The batch span is a root of its own trace *linking* every
            # request span it serves — one forward pass attributed to N
            # requests without picking one of them as the parent.
            links = tuple(r.trace_ctx for r in batch if r.trace_ctx is not None)
            with trace_span("serve.batch", parent=None, links=links,
                            batch_size=len(batch)) as batch_span:
                record_span(
                    "serve.assemble", batch_span.ctx, assemble_ts,
                    time.perf_counter() - assemble_perf,
                    batch_size=len(batch),
                )
                try:
                    fault_point(self._dispatch_site)
                    full = self._full_forecast(model, version)
                except BaseException as error:  # noqa: BLE001 - forwarded to callers
                    batch_span.set(outcome="error", error=type(error).__name__)
                    for request in batch:
                        request.error = error
                        request.done.set()
                    if isinstance(error, ReplicaCrash):
                        # An injected crash: fail the in-flight batch
                        # honestly, then take the dispatcher down with
                        # it. ``running`` flips False and the fleet
                        # router must detect, bypass, and restart us.
                        logger.error("%s: dispatcher crashed (%s)",
                                     self.name, error)
                        return
                    continue
                batch_span.set(outcome="ok", slot=full.slot,
                               cached=full.cached, stale=full.stale)
                for request in batch:
                    request.forecast = self._subset(full, request.stations)
                    request.done.set()

    def _answer(
        self, model: STGNNDJD, version: int, stations: np.ndarray | None
    ) -> Forecast:
        return self._subset(self._full_forecast(model, version), stations)

    def _full_forecast(self, model: STGNNDJD, version: int) -> Forecast:
        """All-station forecast for the frontier slot, cache-aware.

        Degrades instead of failing: if the forward (or an injected
        ``serve.forecast`` fault) raises and a previous forecast exists,
        that last finalized forecast is re-served with ``stale=True``
        and counted in ``serve.stale_served``. Only a failure with no
        fallback propagates to the caller.
        """
        store = self.store
        key = (store.frontier, store.version, version)
        if self.config.cache:
            with self._cache_lock:
                hit = self._cache.get(key)
            if hit is not None:
                self._cache_hits.inc()
                demand, supply = hit
                return Forecast(
                    slot=key[0],
                    stations=np.arange(store.config.num_stations),
                    demand=demand,
                    supply=supply,
                    model_version=version,
                    cached=True,
                    stale=self._reload_failed,
                )
            self._cache_misses.inc()
        if model.training:
            # Other code sharing the model object (e.g. a Trainer whose
            # predict() flips back to train mode) must not re-arm
            # dropout on the serving path.
            model.eval()
        try:
            fault_point(self._forecast_site)
            sample = store.sample()
            with trace_span("serve.forward", slot=sample.t) as forward_span:
                config = trace_config()
                profiled = (
                    forward_span.ctx is not None
                    and forward_span.recorded
                    and config is not None
                    and config.profile_ops
                )
                with inference_mode(), backend.buffer_scope(self._pool):
                    if profiled:
                        # Per-op kernel timing, only on sampled traces:
                        # profile() swap-installs op wrappers, so the
                        # cost is paid per sampled forward, not per call.
                        with profile() as prof:
                            demand_pred, supply_pred = model(sample)
                        top = sorted(prof.stats.items(),
                                     key=lambda kv: kv[1].seconds,
                                     reverse=True)[:6]
                        forward_span.set(ops={
                            name: {"calls": s.calls,
                                   "seconds": round(s.seconds, 6)}
                            for name, s in top
                        })
                    else:
                        demand_pred, supply_pred = model(sample)
                    demand = self.demand_normalizer.inverse_transform(demand_pred.data)
                    supply = self.supply_normalizer.inverse_transform(supply_pred.data)
        except Exception as error:
            fallback = self._last_good
            if fallback is None:
                raise
            self._stale_counter.inc()
            logger.error(
                "forecast failed (%s); serving last finalized forecast "
                "for slot %d as stale", error, fallback.slot,
            )
            return dataclasses.replace(fallback, stale=True)
        demand.setflags(write=False)
        supply.setflags(write=False)
        if self.config.cache:
            with self._cache_lock:
                self._cache[key] = (demand, supply)
                while len(self._cache) > 8:  # keep only the freshest slots
                    self._cache.pop(next(iter(self._cache)))
        forecast = Forecast(
            slot=sample.t,
            stations=np.arange(store.config.num_stations),
            demand=demand,
            supply=supply,
            model_version=version,
            cached=False,
            stale=self._reload_failed,
        )
        self._last_good = forecast
        if self.quality is not None:
            # Capture the forecast for reconciliation when the store
            # closes this slot. Cache hits re-serve this same array
            # pair, so one capture per (frontier, store, model) identity
            # covers every rider who saw it.
            self.quality.record_forecast(
                forecast.slot, demand, supply,
                model_version=version, store_version=key[1],
            )
        return forecast

    @staticmethod
    def _subset(full: Forecast, stations: np.ndarray | None) -> Forecast:
        if stations is None:
            return full
        return Forecast(
            slot=full.slot,
            stations=stations,
            demand=full.demand[stations],
            supply=full.supply[stations],
            model_version=full.model_version,
            cached=full.cached,
            stale=full.stale,
        )

    def on_graph_evolved(self) -> None:
        """Drop state tied to the previous station set.

        Called after the underlying flow store grew or shrank its
        station axis (continual-learning graph evolution): the forecast
        cache, the stale-serving fallback and the quality monitor all
        hold ``(n,)``-shaped arrays for the *old* ``n`` and must not
        leak into post-evolution responses. The model itself is swapped
        separately via :meth:`reload` (the evolved checkpoint).
        """
        with self._cache_lock:
            self._cache.clear()
        self._last_good = None
        if self.quality is not None:
            self.quality.reset()

    # ------------------------------------------------------------------
    # Hot reload
    # ------------------------------------------------------------------
    def reload(self, path: str | Path | None = None) -> int:
        """Atomically swap in a checkpoint; returns the new model version.

        Fails loudly — a checkpoint that does not load, carries the
        wrong schema version, or does not match the store's dimensions
        raises and leaves the current model serving.
        """
        path = path or self.config.checkpoint_path
        if path is None:
            raise ServiceError("no checkpoint path configured for reload")
        with self._reload_lock:
            try:
                fault_point(self._reload_site)
                model = load_stgnn(path)
                self._check_compatible(model)
            except BaseException:
                # The disk checkpoint is newer than what we serve but
                # unusable (torn write, corruption, schema drift): keep
                # the old weights and mark responses stale until a good
                # checkpoint arrives.
                self._reload_errors.inc()
                self._reload_failed = True
                self.reload_error_event.set()
                raise
            model.eval()
            self._model = model
            self._model_version += 1
            self._checkpoint_mtime = _mtime(path)
            self._reload_failed = False
            self._reload_counter.inc()
            self.reload_ok_event.set()
            logger.info(
                "hot-reloaded checkpoint %s (model version %d)",
                path, self._model_version,
            )
            return self._model_version

    def _watch_loop(self) -> None:
        path = self.config.checkpoint_path
        while not self._stop.wait(self.config.reload_poll_seconds):
            mtime = _mtime(path)
            if mtime is None or mtime == self._checkpoint_mtime:
                continue
            try:
                self.reload(path)
            except BaseException as error:  # noqa: BLE001 - keep serving
                # reload() already counted the failure; remember the
                # mtime so a broken file is not retried every poll.
                self._checkpoint_mtime = mtime
                logger.error("checkpoint reload failed: %s", error)


def _mtime(path: str | Path | None) -> float | None:
    if path is None:
        return None
    try:
        return os.stat(path).st_mtime
    except OSError:
        return None

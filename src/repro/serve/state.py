"""Incremental flow state for online serving.

The batch pipeline (:func:`repro.data.flows.build_flow_tensors`) folds a
complete trip log into ``(T, n, n)`` inflow/outflow tensors; a serving
process cannot afford that — it sees one trip at a time and must keep
the model's input windows current as the clock rolls over slot
boundaries. :class:`FlowStateStore` is the streaming counterpart: it
ingests individual trip events and maintains exactly the slots that
STGNN-DJD's sampler reads — the short-term window (last ``k`` slots) and
the long-term window (same slot-of-day over the previous ``d`` days) —
in O(1) amortized work per event.

Mechanics
---------
* **Ring buffers** — the store retains the last ``H + 1`` slots where
  ``H = max(k, d * slots_per_day)`` is the deepest lookback any window
  needs; slot ``s`` lives at ring row ``s % (H + 1)``. Advancing the
  frontier one slot zeroes exactly one row (evicting the slot that just
  fell off the horizon), so rollover is O(n^2), independent of history
  length.
* **Per-event accumulation** — a trip increments one cell of the
  outflow matrix at its checkout slot and one cell of the inflow matrix
  at its return slot, the same ``+= 1.0`` the batch builder performs.
* **In-transit inflow** — a trip that ends after the frontier parks its
  inflow contribution in a pending per-slot matrix, folded into the
  ring when the frontier reaches that slot. This mirrors the batch
  semantics where a trip ending beyond the window contributes outflow
  only.
* **Late events** — events landing in a retained slot behind the
  frontier are applied in place (and bump :attr:`FlowStateStore.version`
  so forecast caches invalidate); events older than the retained
  horizon follow ``late_policy``: counted and dropped by default, or a
  hard error for pipelines that consider lateness a bug.
* **Station partitioning** — a store constructed with
  ``owned_stations`` holds only the matrix *rows* of those stations
  (``(H + 1, n_owned, n)`` rings instead of ``(H + 1, n, n)``) and
  applies only the sub-updates that land in them: the outflow update of
  a trip whose *origin* it owns, the inflow update of a trip whose
  *destination* it owns. :class:`repro.serve.fleet.ShardedFlowStore`
  routes every trip to its origin and destination shards and
  reassembles full-city tensors bitwise equal to an unpartitioned
  store, because each cell is owned by exactly one shard and receives
  its updates in the same per-cell order.

Equivalence guarantee
---------------------
After ingesting a trip log (in any order whose lateness stays within the
horizon) and advancing to slot ``T``, the retained slots are **bitwise
equal** to the corresponding rows of ``build_flow_tensors(trips, n, T,
slot_seconds)``. Both paths accumulate ``+= 1.0`` into float64 zeros;
integer-valued float64 sums are exact far beyond any realistic trip
count, so the accumulation order cannot change a single bit. The
property test in ``tests/serve/test_state_parity.py`` asserts this over
randomized, shuffled, late-heavy event streams.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import BikeShareDataset, FlowSample
from repro.data.records import SECONDS_PER_DAY, TripRecord
from repro.faults import fault_point, fault_transform
from repro.obs.registry import default_registry


@dataclass(frozen=True, slots=True)
class FlowStateConfig:
    """Dimensions and policies of an incremental flow store.

    ``num_stations``, ``slot_seconds``, ``short_window`` (``k``) and
    ``long_days`` (``d``) mirror :class:`repro.data.dataset.FlowDataConfig`;
    ``late_policy`` decides what happens to events older than the
    retained horizon: ``"drop"`` counts and ignores them, ``"error"``
    raises. ``retained_slots`` optionally deepens retention beyond the
    sampling horizon so an online trainer can pull multi-day training
    windows out of the live store (:meth:`FlowStateStore.history_window`)
    — it never shrinks below :attr:`horizon`.
    """

    num_stations: int
    slot_seconds: float = 900.0
    short_window: int = 96
    long_days: int = 7
    late_policy: str = "drop"
    retained_slots: int | None = None

    def __post_init__(self) -> None:
        if self.num_stations < 1:
            raise ValueError(f"num_stations must be >= 1, got {self.num_stations}")
        if self.slot_seconds <= 0:
            raise ValueError(f"slot_seconds must be positive, got {self.slot_seconds}")
        if SECONDS_PER_DAY % self.slot_seconds != 0:
            raise ValueError(
                f"slot_seconds ({self.slot_seconds}) must divide a day evenly"
            )
        if self.short_window < 1:
            raise ValueError(f"short_window must be >= 1, got {self.short_window}")
        if self.long_days < 1:
            raise ValueError(f"long_days must be >= 1, got {self.long_days}")
        if self.late_policy not in ("drop", "error"):
            raise ValueError(
                f"late_policy must be 'drop' or 'error', got {self.late_policy!r}"
            )
        if self.retained_slots is not None and self.retained_slots < 1:
            raise ValueError(
                f"retained_slots must be >= 1 when set, got {self.retained_slots}"
            )

    @property
    def slots_per_day(self) -> int:
        return int(SECONDS_PER_DAY // self.slot_seconds)

    @property
    def horizon(self) -> int:
        """Deepest lookback any sample window needs, in slots."""
        return max(self.short_window, self.long_days * self.slots_per_day)

    @property
    def retention(self) -> int:
        """Slots kept behind the frontier: the sampling horizon, or more
        when ``retained_slots`` asks for a deeper training window."""
        return max(self.horizon, self.retained_slots or 0)

    @classmethod
    def for_dataset(
        cls,
        dataset: BikeShareDataset,
        late_policy: str = "drop",
        retained_slots: int | None = None,
    ) -> "FlowStateConfig":
        """A config matching a dataset's dimensions and windows."""
        return cls(
            num_stations=dataset.num_stations,
            slot_seconds=dataset.config.slot_seconds,
            short_window=dataset.config.short_window,
            long_days=dataset.config.long_days,
            late_policy=late_policy,
            retained_slots=retained_slots,
        )


class LateEventError(ValueError):
    """An event landed behind the retained horizon under ``late_policy='error'``."""


class FlowStateStore:
    """Rolling inflow/outflow state, updated one trip event at a time.

    Thread-safe: ingest/advance/sample take an internal lock, so HTTP
    handler threads can feed the store while the prediction dispatcher
    reads windows from it.
    """

    def __init__(
        self,
        config: FlowStateConfig,
        frontier: int = 0,
        owned_stations: "np.ndarray | list[int] | None" = None,
        metric_prefix: str = "serve",
    ) -> None:
        if frontier < 0:
            raise ValueError(f"frontier must be >= 0, got {frontier}")
        self.config = config
        n = config.num_stations
        if owned_stations is None:
            self._owned: np.ndarray | None = None
            self._owned_sel: "slice | np.ndarray" = slice(0, n)
            self._local: np.ndarray | None = None
            rows = n
        else:
            owned = np.unique(np.asarray(owned_stations, dtype=int))
            if owned.size == 0:
                raise ValueError("owned_stations must name at least one station")
            if owned[0] < 0 or owned[-1] >= n:
                raise ValueError(
                    f"owned_stations must be in 0..{n - 1}, got "
                    f"{owned[0]}..{owned[-1]}"
                )
            self._owned = owned
            # Contiguous blocks (the ShardMap layout) scatter/gather with
            # a basic slice instead of fancy indexing.
            if owned.size == owned[-1] - owned[0] + 1:
                self._owned_sel = slice(int(owned[0]), int(owned[-1]) + 1)
            else:
                self._owned_sel = owned
            local = np.full(n, -1, dtype=np.int64)
            local[owned] = np.arange(owned.size)
            self._local = local
            rows = int(owned.size)
        self._rows = rows
        self._capacity = config.retention + 1  # retained slots: (f - R, f]
        self._inflow = np.zeros((self._capacity, rows, n))
        self._outflow = np.zeros((self._capacity, rows, n))
        self._pending_inflow: dict[int, np.ndarray] = {}
        self._frontier = frontier
        self._start_frontier = frontier
        self._warm_started = False
        #: Monotonic counter bumped whenever the windows visible to
        #: ``sample()`` may have changed (rollover or a late event
        #: landing behind the frontier). Forecast caches key on it.
        self.version = 0
        self._lock = threading.RLock()
        # Preallocated window snapshots + index scratch for sample();
        # partitioned stores cannot serve full windows (the fleet
        # assembles them), so they skip the buffers entirely.
        if self._owned is None:
            k, d = config.short_window, config.long_days
            self._short_in = np.empty((k, n, n))
            self._short_out = np.empty((k, n, n))
            self._long_in = np.empty((d, n, n))
            self._long_out = np.empty((d, n, n))
            self._zero_target = np.zeros(n)
            self._zero_target.setflags(write=False)
        obs = default_registry()
        self._events_counter = obs.counter(f"{metric_prefix}.ingest_events")
        self._late_dropped_counter = obs.counter(
            f"{metric_prefix}.ingest_dropped_late"
        )
        self._rollover_counter = obs.counter(f"{metric_prefix}.rollovers")
        self._frontier_gauge = obs.gauge(f"{metric_prefix}.frontier")
        #: Rollover listeners: fn(store, closed_slots) called after each
        #: frontier advance with the range of slots that just closed.
        self._listeners: list = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(
        cls,
        dataset: BikeShareDataset,
        frontier: int | None = None,
        late_policy: str = "drop",
        owned_stations: "np.ndarray | list[int] | None" = None,
        metric_prefix: str = "serve",
        retained_slots: int | None = None,
    ) -> "FlowStateStore":
        """Warm-start a store from a dataset's materialized flow history.

        ``frontier`` defaults to ``dataset.num_slots`` — the store picks
        up exactly where the offline tensors end, with every retained
        slot already populated, so the first online prediction has full
        windows instead of a zero-padded warm-up. A partitioned store
        (``owned_stations``) copies only its own rows.
        """
        config = FlowStateConfig.for_dataset(
            dataset, late_policy=late_policy, retained_slots=retained_slots
        )
        frontier = dataset.num_slots if frontier is None else frontier
        if not 0 <= frontier <= dataset.num_slots:
            raise ValueError(
                f"frontier {frontier} outside the dataset's 0..{dataset.num_slots}"
            )
        store = cls(
            config,
            frontier=frontier,
            owned_stations=owned_stations,
            metric_prefix=metric_prefix,
        )
        first = max(0, frontier - config.retention)
        sel = store._owned_sel
        for slot in range(first, frontier):
            row = slot % store._capacity
            store._inflow[row] = dataset.inflow[slot][sel]
            store._outflow[row] = dataset.outflow[slot][sel]
        store._warm_started = True
        return store

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def frontier(self) -> int:
        """The open slot currently accumulating events."""
        return self._frontier

    @property
    def horizon(self) -> int:
        return self.config.horizon

    @property
    def oldest_retained(self) -> int:
        """Oldest slot still held in the ring (never below 0)."""
        return max(0, self._frontier - self.config.retention)

    @property
    def owned_stations(self) -> "np.ndarray | None":
        """Global station ids this store holds rows for (None: all)."""
        return self._owned

    @property
    def owned_selector(self) -> "slice | np.ndarray":
        """Index into a full-city row axis selecting this store's rows."""
        return self._owned_sel

    @property
    def warmed_up(self) -> bool:
        """Whether every retained slot has been observed (or warm-started).

        A store constructed cold at ``frontier > 0`` reads zeros for the
        slots it never saw; until one full horizon of rollover those
        zeros leak into the sample windows.
        """
        return (
            self._warm_started
            or self._start_frontier == 0
            or self._frontier - self._start_frontier >= self.config.horizon
        )

    def __repr__(self) -> str:
        owned = "" if self._owned is None else f", owned={self._rows}"
        return (
            f"FlowStateStore(stations={self.config.num_stations}{owned}, "
            f"frontier={self._frontier}, horizon={self.config.horizon}, "
            f"pending={len(self._pending_inflow)}, version={self.version})"
        )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, trip: TripRecord) -> bool:
        """Fold one trip into the flow state; ``False`` if dropped as late."""
        return self.ingest_event(
            trip.origin, trip.destination, trip.start_time, trip.end_time
        )

    def ingest_event(
        self,
        origin: int,
        destination: int,
        start_time: float,
        end_time: float,
    ) -> bool:
        """Fold one (origin, destination, start, end) event into the state.

        The frontier auto-advances when the event starts in a future
        slot, so a store fed in event-time order needs no external
        clock. Returns ``True`` if the event was applied, ``False`` if
        it was dropped by the late policy.
        """
        # Chaos seams: "state.clock" lets a plan skew this event's
        # timestamps in flight (modelling feed clock drift); the skewed
        # times then flow through the exact same validation and late
        # policy as real ones. "state.ingest" can crash/raise per event.
        fault_point("state.ingest")
        start_time, end_time = fault_transform(
            "state.clock", (start_time, end_time)
        )
        return self.apply_event(origin, destination, start_time, end_time)

    def apply_event(
        self,
        origin: int,
        destination: int,
        start_time: float,
        end_time: float,
    ) -> bool:
        """The validated application path behind :meth:`ingest_event`.

        Bypasses the per-event chaos seams so a routing layer
        (:class:`repro.serve.fleet.ShardedFlowStore`) that already ran
        them once can deliver the same event to both its origin and
        destination shards without double-firing ``state.ingest`` /
        ``state.clock``. A partitioned store applies only the
        sub-updates landing in rows it owns; the accept/drop verdict
        depends only on the (shared) slot clock, so every shard of a
        coherent fleet returns the same answer for the same event.
        """
        n = self.config.num_stations
        if not (0 <= origin < n and 0 <= destination < n):
            raise ValueError(
                f"station ids must be in 0..{n - 1}, got {origin}->{destination}"
            )
        slot_seconds = self.config.slot_seconds
        start_slot = int(start_time // slot_seconds)
        end_slot = int(end_time // slot_seconds)
        if start_slot < 0:
            raise ValueError(f"event starts before slot 0 (start_time={start_time})")
        with self._lock:
            if start_slot > self._frontier:
                self.advance_to(start_slot)
            if start_slot <= self._frontier - self._capacity:
                if self.config.late_policy == "error":
                    raise LateEventError(
                        f"event starting in slot {start_slot} is behind the "
                        f"retained horizon (oldest retained: "
                        f"{self._frontier - self.config.retention})"
                    )
                self._late_dropped_counter.inc()
                return False
            row = origin if self._local is None else int(self._local[origin])
            if row >= 0:
                self._outflow[start_slot % self._capacity][row, destination] += 1.0
                if start_slot < self._frontier:
                    # A late checkout changed an already-closed slot: any
                    # forecast computed from the old windows is stale.
                    self.version += 1
            self._apply_inflow(destination, origin, end_slot)
            self._events_counter.inc()
            return True

    def _apply_inflow(self, station: int, counterpart: int, end_slot: int) -> None:
        """Credit an inflow at ``end_slot``, wherever that slot lives.

        Matches the batch builder: returns before slot 0 are ignored,
        returns beyond the frontier wait in the pending map, returns
        behind the horizon fall off (they can never be read again).
        Unowned rows of a partitioned store are skipped — the shard
        owning the destination station applies them instead.
        """
        row = station if self._local is None else int(self._local[station])
        if end_slot < 0 or row < 0:
            return
        if end_slot > self._frontier:
            pending = self._pending_inflow.get(end_slot)
            if pending is None:
                pending = np.zeros((self._rows, self.config.num_stations))
                self._pending_inflow[end_slot] = pending
            pending[row, counterpart] += 1.0
            return
        if end_slot <= self._frontier - self._capacity:
            return  # behind the horizon: unreadable, matches eviction
        self._inflow[end_slot % self._capacity][row, counterpart] += 1.0
        if end_slot < self._frontier:
            self.version += 1

    # ------------------------------------------------------------------
    # Rollover
    # ------------------------------------------------------------------
    def advance_to(self, slot: int) -> None:
        """Move the frontier to ``slot``, finalizing every slot passed.

        Each newly opened slot starts from zeros (the ring row it
        claims belonged to the slot one full horizon earlier) plus any
        pending inflow from trips already known to end in it.
        """
        with self._lock:
            if slot < self._frontier:
                raise ValueError(
                    f"cannot advance backwards: frontier={self._frontier}, got {slot}"
                )
            if slot == self._frontier:
                return
            fault_point("state.rollover")
            gap = slot - self._frontier
            if gap >= self._capacity:
                # The entire ring is evicted; skip per-slot zeroing.
                self._inflow[:] = 0.0
                self._outflow[:] = 0.0
                fresh = range(slot - self._capacity + 1, slot + 1)
            else:
                fresh = range(self._frontier + 1, slot + 1)
                for s in fresh:
                    row = s % self._capacity
                    self._inflow[row] = 0.0
                    self._outflow[row] = 0.0
            for s in fresh:
                pending = self._pending_inflow.pop(s, None)
                if pending is not None:
                    self._inflow[s % self._capacity] += pending
            # Pending inflow for slots the frontier jumped clean over
            # (possible when gap >= capacity) is now behind the horizon.
            for s in [s for s in self._pending_inflow if s <= slot - self._capacity]:
                del self._pending_inflow[s]
            old_frontier = self._frontier
            self._frontier = slot
            self.version += 1
            self._rollover_counter.inc(gap)
            self._frontier_gauge.set(slot)
            if self._listeners:
                # Still under the (reentrant) lock: listeners may call
                # realized()/sample() but must not block on other locks
                # held by ingest threads.
                closed = range(old_frontier, slot)
                for listener in self._listeners:
                    listener(self, closed)

    def add_rollover_listener(self, listener) -> None:
        """Register ``fn(store, closed_slots)`` to run after each advance.

        ``closed_slots`` is the ``range`` of slots finalized by that
        advance (old frontier inclusive, new frontier exclusive). The
        quality monitor uses this to reconcile forecasts the moment
        their target slot's realized flows are complete.
        """
        with self._lock:
            self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def realized(self, slot: int) -> tuple[np.ndarray, np.ndarray]:
        """Realized per-station ``(demand, supply)`` for a retained slot.

        Demand is the station's total outflow, supply its total inflow —
        the same row sums :func:`repro.data.flows.demand_supply` takes,
        so reconciliation compares forecasts against exactly what the
        offline evaluation would. Raises :class:`IndexError` once the
        slot has been evicted from the ring. A partitioned store
        returns ``(n_owned,)`` vectors covering :attr:`owned_stations`
        in ascending-id order.
        """
        slot = int(slot)
        with self._lock:
            if not self.oldest_retained <= slot <= self._frontier:
                raise IndexError(
                    f"slot {slot} is not retained "
                    f"({self.oldest_retained}..{self._frontier})"
                )
            row = slot % self._capacity
            return (
                self._outflow[row].sum(axis=1),
                self._inflow[row].sum(axis=1),
            )

    def _gather(self, ring: np.ndarray, slots: np.ndarray, out: np.ndarray) -> np.ndarray:
        np.take(ring, slots % self._capacity, axis=0, out=out)
        return out

    def sample(self) -> FlowSample:
        """The model input for predicting the current frontier slot.

        Windows are copies into buffers owned by the store (stable until
        the next ``sample()`` call), ordered exactly as
        :meth:`repro.data.dataset.BikeShareDataset.sample` orders them:
        short window oldest-first over ``[t-k, t)``, long window
        oldest-first over the same slot-of-day of the previous ``d``
        days. Target fields are zeros — the future is what the model is
        being asked for.
        """
        config = self.config
        if self._owned is not None:
            raise ValueError(
                "a station-partitioned store holds only its own rows; "
                "assemble full windows through ShardedFlowStore.sample()"
            )
        t = self._frontier
        if t < config.horizon:
            raise IndexError(
                f"frontier {t} has incomplete history windows "
                f"(need at least {config.horizon} finalized slots)"
            )
        with self._lock:
            k, d, spd = config.short_window, config.long_days, config.slots_per_day
            short_slots = np.arange(t - k, t)
            long_slots = np.arange(t - d * spd, t, spd)
            return FlowSample(
                t=t,
                short_inflow=self._gather(self._inflow, short_slots, self._short_in),
                short_outflow=self._gather(self._outflow, short_slots, self._short_out),
                long_inflow=self._gather(self._inflow, long_slots, self._long_in),
                long_outflow=self._gather(self._outflow, long_slots, self._long_out),
                target_demand=self._zero_target,
                target_supply=self._zero_target,
            )

    def scatter_window(
        self,
        slots: np.ndarray,
        inflow_out: np.ndarray,
        outflow_out: np.ndarray,
    ) -> None:
        """Copy the ring rows for ``slots`` into full-city buffers.

        ``*_out`` are ``(len(slots), n, n)`` arrays; only the rows this
        store owns are written (all of them for an unpartitioned store),
        so K disjoint shards scattering into the same buffers assemble
        the complete city bitwise. The caller is responsible for slot
        validity — this is the fleet's assembly primitive, running
        under the fleet lock with coherent shard clocks.
        """
        with self._lock:
            rows = slots % self._capacity
            inflow_out[:, self._owned_sel, :] = self._inflow[rows]
            outflow_out[:, self._owned_sel, :] = self._outflow[rows]

    def retained_tensors(self) -> tuple[int, np.ndarray, np.ndarray]:
        """``(first_slot, inflow, outflow)`` for every retained slot.

        The arrays are ``(m, n, n)`` contiguous copies covering slots
        ``first_slot .. frontier`` inclusive — the view the parity tests
        compare bitwise against ``build_flow_tensors``. A partitioned
        store returns its ``(m, n_owned, n)`` rows.
        """
        with self._lock:
            first = self.oldest_retained
            slots = np.arange(first, self._frontier + 1)
            rows = slots % self._capacity
            return first, self._inflow[rows].copy(), self._outflow[rows].copy()

    def history_window(
        self, slots: int | None = None, end: int | None = None
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """Training-ready ``(first_slot, inflow, outflow)`` flow tensors.

        Returns contiguous copies of the last ``slots`` *finalized*
        slots ending at ``end`` (exclusive; defaults to the frontier, so
        the open, still-accumulating frontier row is never included).
        Rows are bitwise equal to the corresponding rows of
        :func:`repro.data.flows.build_flow_tensors` over the same event
        log — both paths accumulate integer-valued ``+= 1.0`` into
        float64 zeros, so the continual trainer retrains on exactly the
        tensors the offline pipeline would have built. Raises
        :class:`ValueError` when the requested range reaches behind
        :attr:`oldest_retained` (deepen ``retained_slots`` to keep
        more). A partitioned store returns its owned rows only;
        :meth:`repro.serve.fleet.ShardedFlowStore.history_window`
        assembles the full city.
        """
        with self._lock:
            stop = self._frontier if end is None else int(end)
            if not 0 <= stop <= self._frontier:
                raise ValueError(
                    f"end must be in 0..{self._frontier} (the frontier), got {stop}"
                )
            if slots is None:
                start = min(stop, self.oldest_retained)
            else:
                if slots < 0:
                    raise ValueError(f"slots must be >= 0, got {slots}")
                start = stop - int(slots)
            if start < self.oldest_retained and start < stop:
                raise ValueError(
                    f"history window {start}..{stop} reaches behind the oldest "
                    f"retained slot {self.oldest_retained}; raise "
                    f"FlowStateConfig.retained_slots to keep a deeper history"
                )
            slot_ids = np.arange(start, stop)
            rows = slot_ids % self._capacity
            return start, self._inflow[rows].copy(), self._outflow[rows].copy()

"""Recurrent cells and sequence encoders (RNN, LSTM, GRU).

These power the RNN and LSTM baselines from the paper's Table I, and the
GRU used inside the ASTGCN baseline's temporal branches. Cells process
one time step; the ``*Encoder`` wrappers unroll a whole ``(T, B, F)``
sequence and return the final hidden state.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class RNNCell(Module):
    """Vanilla Elman cell: ``h' = tanh(x W_x + h W_h + b)``."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_x = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.weight_h = Parameter(init.xavier_uniform((hidden_size, hidden_size), rng))
        self.bias = Parameter(init.zeros((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return (x @ self.weight_x + h @ self.weight_h + self.bias).tanh()


class LSTMCell(Module):
    """LSTM cell with the standard input/forget/cell/output gates."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Fused gate weights: columns ordered [input, forget, cell, output].
        self.weight_x = Parameter(init.xavier_uniform((input_size, 4 * hidden_size), rng))
        self.weight_h = Parameter(init.xavier_uniform((hidden_size, 4 * hidden_size), rng))
        bias = init.zeros((4 * hidden_size,))
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h, c = state
        gates = x @ self.weight_x + h @ self.weight_h + self.bias
        hs = self.hidden_size
        i = gates[..., 0:hs].sigmoid()
        f = gates[..., hs : 2 * hs].sigmoid()
        g = gates[..., 2 * hs : 3 * hs].tanh()
        o = gates[..., 3 * hs : 4 * hs].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class GRUCell(Module):
    """GRU cell (update/reset gates + candidate state)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_x = Parameter(init.xavier_uniform((input_size, 3 * hidden_size), rng))
        self.weight_h = Parameter(init.xavier_uniform((hidden_size, 3 * hidden_size), rng))
        self.bias = Parameter(init.zeros((3 * hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        hs = self.hidden_size
        x_proj = x @ self.weight_x + self.bias
        h_proj = h @ self.weight_h
        z = (x_proj[..., 0:hs] + h_proj[..., 0:hs]).sigmoid()
        r = (x_proj[..., hs : 2 * hs] + h_proj[..., hs : 2 * hs]).sigmoid()
        candidate = (x_proj[..., 2 * hs : 3 * hs] + r * h_proj[..., 2 * hs : 3 * hs]).tanh()
        return (1.0 - z) * h + z * candidate


class RNNEncoder(Module):
    """Unroll an :class:`RNNCell` over a ``(T, B, F)`` sequence."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.cell = RNNCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor) -> Tensor:
        steps, batch = sequence.shape[0], sequence.shape[1]
        h = Tensor(np.zeros((batch, self.hidden_size)))
        for t in range(steps):
            h = self.cell(sequence[t], h)
        return h


class LSTMEncoder(Module):
    """Unroll an :class:`LSTMCell` over a ``(T, B, F)`` sequence."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor) -> Tensor:
        steps, batch = sequence.shape[0], sequence.shape[1]
        h = Tensor(np.zeros((batch, self.hidden_size)))
        c = Tensor(np.zeros((batch, self.hidden_size)))
        for t in range(steps):
            h, c = self.cell(sequence[t], (h, c))
        return h


class GRUEncoder(Module):
    """Unroll a :class:`GRUCell` over a ``(T, B, F)`` sequence."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor) -> Tensor:
        steps, batch = sequence.shape[0], sequence.shape[1]
        h = Tensor(np.zeros((batch, self.hidden_size)))
        for t in range(steps):
            h = self.cell(sequence[t], h)
        return h

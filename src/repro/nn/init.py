"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that
every model in the repo is exactly reproducible from a seed — a
requirement for the benchmark harness, which compares methods trained
from identical initial conditions.

Draws are always made in ``float64`` (so a seed produces the same
weights regardless of dtype policy) and then cast to the backend's
default dtype, which is where layers pull their parameter dtype from.
"""

from __future__ import annotations

import numpy as np

from repro import backend


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform init, suited to tanh/sigmoid/linear layers."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    draw = rng.uniform(-bound, bound, size=shape)
    return draw.astype(backend.default_dtype(), copy=False)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform init, suited to ReLU-family activations."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    draw = rng.uniform(-bound, bound, size=shape)
    return draw.astype(backend.default_dtype(), copy=False)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return backend.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Fan-in/fan-out for a weight of arbitrary rank.

    For rank-1 weights (e.g. the 1x1 convolution kernels of the flow
    convolution, shape ``(k,)``) both fans equal the length.
    """
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive

"""Attention primitives shared by the graph generator and the GNN.

Two forms appear in the paper:

* *Additive (GAT-style) pairwise attention* over node-feature pairs
  (Eqs. 11-12 and 15-16): ``e(i,j) = ELU([F_i W8 || F_j W8] W9)`` then a
  row softmax. :class:`PairwiseAdditiveAttention` computes the full
  ``n x n`` score matrix in one vectorised pass by splitting ``W9`` into
  its source/target halves.
* *Scaled dot-product attention*, used by our ASTGCN baseline's spatial
  attention block.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, is_grad_enabled, ops


class PairwiseAdditiveAttention(Module):
    """All-pairs additive attention producing an ``(n, n)`` score matrix.

    For features ``F in R^{n x f}`` the paper defines
    ``e(i, j) = sigma_2([F_i W || F_j W] a)`` with ``a in R^{2f x 1}``.
    Writing ``a = [a_src; a_dst]`` gives
    ``e(i, j) = sigma_2((F W a_src)_i + (F W a_dst)_j)``, which we
    evaluate with one projection and an outer broadcast — O(n^2) instead
    of materialising n^2 concatenations.
    """

    def __init__(self, features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.features = features
        self.weight = Parameter(init.xavier_uniform((features, features), rng), name="W8")
        self.attn_src = Parameter(init.xavier_uniform((features, 1), rng), name="a_src")
        self.attn_dst = Parameter(init.xavier_uniform((features, 1), rng), name="a_dst")

    def scores(self, features: Tensor) -> Tensor:
        """Raw (pre-softmax) attention coefficients ``e(i, j)``, ELU-activated.

        ``e[i, j] = ELU(src_i + dst_j)`` — the projection plus the whole
        broadcast-add-ELU pipeline runs as one fused kernel
        (:func:`repro.tensor.ops.pairwise_scores`).
        """
        projected = ops.linear(features, self.weight)  # (n, f)
        return ops.pairwise_scores(projected, self.attn_src, self.attn_dst)

    def forward(self, features: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Row-softmaxed attention matrix ``alpha`` (Eq. 12 / Eq. 16)."""
        if mask is None and not is_grad_enabled():
            return Tensor._from_data(self.weights_data(features.data))
        raw = self.scores(features)
        if mask is None:
            return ops.row_softmax(raw)
        return ops.masked_softmax(raw, mask, axis=-1)

    def sparse_forward(
        self, features: Tensor, k: int
    ) -> tuple[Tensor, np.ndarray]:
        """Top-k attention: ``(n, k)`` row-softmaxed weights + kept columns.

        The additive score ``e(i, j) = ELU(src_i + dst_j)`` is strictly
        increasing in ``dst_j`` within every row, so all rows rank
        columns identically: the ``k`` columns with the largest ``dst``
        projections. One O(n log n) argsort of the thin ``(n,)`` dst
        vector therefore selects the *exact* top-k scores of every row
        without materialising the ``(n, n)`` score matrix; only the
        softmax renormalisation over ``k`` instead of ``n`` entries makes
        the result an approximation of the dense attention (and with
        ``k >= n`` even that vanishes: float64 results are bitwise
        identical to :meth:`forward`).

        Column selection is structural (raw numpy, not differentiated
        through), mirroring the FCG mask contract. Returns
        ``(alpha, columns)`` with ``alpha`` of shape ``(n, k)`` and
        ``columns`` the shared ascending ``(k,)`` index vector.
        """
        if features.ndim != 2:
            raise ValueError(f"features must be (n, f), got {features.shape}")
        n = features.shape[0]
        k = min(int(k), n)
        if k < 1:
            raise ValueError("k must be >= 1")
        projected = ops.linear(features, self.weight)  # (n, f)
        src = ops.linear(projected, self.attn_src)  # (n, 1)
        dst = ops.linear(projected, self.attn_dst)  # (n, 1)
        if k >= n:
            columns = np.arange(n)
        else:
            order = np.argsort(dst.data[:, 0], kind="stable")
            columns = np.sort(order[n - k :])
        dst_selected = dst.reshape((1, n))[:, columns]  # (1, k)
        pre = src + dst_selected  # broadcast (n, k)
        return ops.row_softmax(pre.elu()), columns

    def weights_data(self, features: np.ndarray) -> np.ndarray:
        """Whole-module fused forward on raw arrays (no-grad serving path).

        One python call replaces the projection / score / softmax op
        chain. Every expression matches its op counterpart term for term
        (:func:`~repro.tensor.ops.pairwise_scores`,
        :func:`~repro.tensor.ops.row_softmax`), so float64 results are
        bitwise identical to the recorded-graph forward.
        """
        projected = features @ self.weight.data
        src = projected @ self.attn_src.data  # (n, 1)
        dst = projected @ self.attn_dst.data  # (n, 1)
        pre = src + dst.T
        raw = np.where(pre > 0, pre, np.exp(np.minimum(pre, 0.0)) - 1.0)
        shifted = raw - raw.max(axis=-1, keepdims=True)
        np.exp(shifted, out=shifted)
        shifted /= shifted.sum(axis=-1, keepdims=True)
        return shifted


class ScaledDotProductAttention(Module):
    """Standard ``softmax(Q K^T / sqrt(d)) V`` attention block.

    ``block_rows`` row-blocks the forward-only score/softmax pipeline
    (see :func:`repro.tensor.ops.sdp_attention`): 0 keeps the single
    full-matrix pass, whose float64 output the blocked variant matches
    only within tolerance (BLAS blocking differs), so the default stays
    exact for small models.
    """

    def __init__(
        self, model_dim: int, rng: np.random.Generator, block_rows: int = 0
    ) -> None:
        super().__init__()
        self.model_dim = model_dim
        self.block_rows = block_rows
        self.query = Parameter(init.xavier_uniform((model_dim, model_dim), rng))
        self.key = Parameter(init.xavier_uniform((model_dim, model_dim), rng))
        self.value = Parameter(init.xavier_uniform((model_dim, model_dim), rng))

    def forward(self, x: Tensor) -> Tensor:
        q = ops.linear(x, self.query)
        k = ops.linear(x, self.key)
        v = ops.linear(x, self.value)
        # Folding the 1/sqrt(d) scale into the thin (n, d) query instead
        # of the (n, n) score matrix touches d/n as much memory.
        scale = 1.0 / np.sqrt(self.model_dim)
        return ops.sdp_attention(q * scale, k, v, block_rows=self.block_rows)

    def attention_matrix(self, x: Tensor) -> Tensor:
        """Return just the attention weights (for inspection / case study)."""
        q = ops.linear(x, self.query)
        k = ops.linear(x, self.key)
        # Folding the 1/sqrt(d) scale into the thin (n, d) query instead
        # of the (n, n) score matrix touches d/n as much memory.
        scale = 1.0 / np.sqrt(self.model_dim)
        return ops.row_softmax((q * scale) @ k.T)

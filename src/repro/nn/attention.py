"""Attention primitives shared by the graph generator and the GNN.

Two forms appear in the paper:

* *Additive (GAT-style) pairwise attention* over node-feature pairs
  (Eqs. 11-12 and 15-16): ``e(i,j) = ELU([F_i W8 || F_j W8] W9)`` then a
  row softmax. :class:`PairwiseAdditiveAttention` computes the full
  ``n x n`` score matrix in one vectorised pass by splitting ``W9`` into
  its source/target halves.
* *Scaled dot-product attention*, used by our ASTGCN baseline's spatial
  attention block.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, ops


class PairwiseAdditiveAttention(Module):
    """All-pairs additive attention producing an ``(n, n)`` score matrix.

    For features ``F in R^{n x f}`` the paper defines
    ``e(i, j) = sigma_2([F_i W || F_j W] a)`` with ``a in R^{2f x 1}``.
    Writing ``a = [a_src; a_dst]`` gives
    ``e(i, j) = sigma_2((F W a_src)_i + (F W a_dst)_j)``, which we
    evaluate with one projection and an outer broadcast — O(n^2) instead
    of materialising n^2 concatenations.
    """

    def __init__(self, features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.features = features
        self.weight = Parameter(init.xavier_uniform((features, features), rng), name="W8")
        self.attn_src = Parameter(init.xavier_uniform((features, 1), rng), name="a_src")
        self.attn_dst = Parameter(init.xavier_uniform((features, 1), rng), name="a_dst")

    def scores(self, features: Tensor) -> Tensor:
        """Raw (pre-softmax) attention coefficients ``e(i, j)``, ELU-activated."""
        projected = features @ self.weight  # (n, f)
        src = projected @ self.attn_src  # (n, 1)
        dst = projected @ self.attn_dst  # (n, 1)
        # e[i, j] = ELU(src_i + dst_j) via broadcasting.
        return (src + dst.T).elu()

    def forward(self, features: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Row-softmaxed attention matrix ``alpha`` (Eq. 12 / Eq. 16)."""
        raw = self.scores(features)
        if mask is None:
            return raw.softmax(axis=-1)
        return ops.masked_softmax(raw, mask, axis=-1)


class ScaledDotProductAttention(Module):
    """Standard ``softmax(Q K^T / sqrt(d)) V`` attention block."""

    def __init__(self, model_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.model_dim = model_dim
        self.query = Parameter(init.xavier_uniform((model_dim, model_dim), rng))
        self.key = Parameter(init.xavier_uniform((model_dim, model_dim), rng))
        self.value = Parameter(init.xavier_uniform((model_dim, model_dim), rng))

    def forward(self, x: Tensor) -> Tensor:
        q = x @ self.query
        k = x @ self.key
        v = x @ self.value
        scale = 1.0 / np.sqrt(self.model_dim)
        attention = ((q @ k.T) * scale).softmax(axis=-1)
        return attention @ v

    def attention_matrix(self, x: Tensor) -> Tensor:
        """Return just the attention weights (for inspection / case study)."""
        q = x @ self.query
        k = x @ self.key
        scale = 1.0 / np.sqrt(self.model_dim)
        return ((q @ k.T) * scale).softmax(axis=-1)

"""Activation modules wrapping the functional ops in :mod:`repro.tensor.ops`."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit — sigma_1 in the paper's flow convolution."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class ELU(Module):
    """Exponential linear unit — sigma_2 in the paper's PCG attention."""

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return x.elu(self.alpha)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

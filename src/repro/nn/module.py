"""Module/Parameter system, the backbone of every model in the repo.

Mirrors the familiar ``torch.nn.Module`` contract: parameters and child
modules registered as attributes are discovered automatically, state
dicts round-trip through plain dicts of numpy arrays, and train/eval
mode toggles propagate down the module tree.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro import backend
from repro.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a learnable model parameter (always requires grad)."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; ``parameters()`` and ``named_parameters()`` walk the tree.
    """

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child under an explicit name (for module lists)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        # Iterative walk with direct dict writes: the recursive generator
        # chain plus the registration __setattr__ cost O(n * depth) per
        # toggle, noticeable when serving flips eval/train per slot.
        stack: list[Module] = [self]
        while stack:
            module = stack.pop()
            module.__dict__["training"] = mode
            stack.extend(module._modules.values())
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def to(self, dtype: "str | np.dtype | type") -> "Module":
        """Cast every parameter to ``dtype`` in place (torch's ``.to``).

        The serving path casts a trained model once with
        ``model.to(np.float32)`` and runs forwards under
        ``inference_mode(dtype="float32")``; cast back to ``float64``
        before resuming training (note the round trip truncates
        mantissas — keep a ``state_dict`` snapshot when exact resumption
        matters). Accumulated gradients are dropped, not cast.
        """
        resolved = backend.resolve_dtype(dtype)
        for param in self.parameters():
            param.data = param.data.astype(resolved, copy=False)
            param.grad = None
        return self

    @property
    def param_dtype(self) -> np.dtype:
        """Dtype of the module's parameters (backend default if none)."""
        for param in self.parameters():
            return param.data.dtype
        return backend.default_dtype()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot all parameters as copied numpy arrays."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            # Preserve the module's current dtype: a float32-cast model
            # loading a float64 checkpoint stays float32, and vice versa.
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"parameter {name!r}: shape {value.shape} != expected {param.data.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_names = ", ".join(self._modules)
        return f"{type(self).__name__}({child_names})"


class ModuleList(Module):
    """A list of submodules, each registered for parameter discovery."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        self.register_module(str(len(self._items)), module)
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items = list(modules)
        for i, module in enumerate(self._items):
            self.register_module(str(i), module)

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

"""Core layers: Linear, Conv1x1 (the flow-convolution kernel), Dropout.

``Conv1x1`` deserves a note: the paper applies 1x1 convolution kernels
across the *channel* (time) axis of stacked ``(k, n, n)`` flow tensors
(Eqs. 1-4). With a 1x1 spatial footprint the convolution degenerates to
a learned weighted sum over the channel axis plus a bias — which is how
we implement it, with identical math and gradients to a framework conv.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, ops


class Linear(Module):
    """Affine map ``y = x @ W + b`` on the last axis."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        # Fused matmul+bias: one op (and one graph node) instead of two.
        return ops.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Conv1x1(Module):
    """1x1 convolution over the leading channel axis of a ``(c, ...)`` tensor.

    Computes ``out = sigma(sum_c W[c] * x[c] + b)`` where ``b`` has the
    shape of one channel, matching the paper's ``W in R^{1xk}`` and
    ``b in R^{n x n}`` parameterisation (Eqs. 1-4). The activation is
    applied by the caller, keeping this layer purely linear.
    """

    def __init__(
        self,
        channels: int,
        field_shape: tuple[int, ...],
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if channels <= 0:
            raise ValueError("Conv1x1 needs at least one channel")
        rng = rng or np.random.default_rng()
        self.channels = channels
        self.field_shape = tuple(field_shape)
        self.weight = Parameter(init.xavier_uniform((channels,), rng), name="weight")
        self.bias = Parameter(init.zeros(self.field_shape), name="bias")

    def forward(self, x: Tensor, relu: bool = False) -> Tensor:
        if x.shape[0] != self.channels:
            raise ValueError(
                f"expected {self.channels} channels, got tensor with shape {x.shape}"
            )
        if x.shape[1:] != self.field_shape:
            raise ValueError(
                f"expected field shape {self.field_shape}, got {x.shape[1:]}"
            )
        # Fused channel contraction: sum_c W[c] * x[c] + b in one kernel,
        # optionally with the activation folded in.
        return ops.conv1x1(x, self.weight, self.bias, relu=relu)

    def __repr__(self) -> str:
        return f"Conv1x1(channels={self.channels}, field={self.field_shape})"


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    The mask generator is owned by the layer so repeated training runs
    with the same seed sample identical masks.
    """

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        mask = ops.dropout_mask(x.shape, self.rate, self._rng, dtype=x.data.dtype)
        return x * Tensor(mask, dtype=x.data.dtype)

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"


class LayerNorm(Module):
    """Layer normalization over the last axis, with learned scale/shift."""

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.features = features
        self.eps = eps
        self.gamma = Parameter(np.ones(features), name="gamma")
        self.beta = Parameter(np.zeros(features), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / ops.sqrt(var + self.eps)
        return normed * self.gamma + self.beta

    def __repr__(self) -> str:
        return f"LayerNorm({self.features})"

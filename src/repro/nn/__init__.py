"""Neural network building blocks on top of :mod:`repro.tensor`.

Provides the Module/Parameter system, common layers (Linear, Conv1x1,
Dropout, LayerNorm), activations, recurrent cells/encoders, attention
primitives, weight initializers and loss functions — everything the
STGNN-DJD model and the deep baselines are assembled from.
"""

from repro.nn.module import Module, ModuleList, Parameter, Sequential
from repro.nn.layers import Conv1x1, Dropout, LayerNorm, Linear
from repro.nn.activations import ELU, ReLU, Sigmoid, Tanh
from repro.nn.recurrent import (
    GRUCell,
    GRUEncoder,
    LSTMCell,
    LSTMEncoder,
    RNNCell,
    RNNEncoder,
)
from repro.nn.attention import PairwiseAdditiveAttention, ScaledDotProductAttention
from repro.nn.loss import joint_demand_supply_loss, mae_loss, mse_loss
from repro.nn import init

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv1x1",
    "Dropout",
    "LayerNorm",
    "ReLU",
    "ELU",
    "Sigmoid",
    "Tanh",
    "RNNCell",
    "LSTMCell",
    "GRUCell",
    "RNNEncoder",
    "LSTMEncoder",
    "GRUEncoder",
    "PairwiseAdditiveAttention",
    "ScaledDotProductAttention",
    "mse_loss",
    "mae_loss",
    "joint_demand_supply_loss",
    "init",
]

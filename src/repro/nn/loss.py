"""Loss functions, including the paper's joint demand-supply loss (Eq. 21)."""

from __future__ import annotations

from repro.tensor import Tensor, ops


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    _check_shapes(prediction, target)
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error over all elements."""
    _check_shapes(prediction, target)
    return (prediction - target).abs().mean()


def joint_demand_supply_loss(
    demand_pred: Tensor,
    demand_true: Tensor,
    supply_pred: Tensor,
    supply_true: Tensor,
    eps: float = 1e-12,
) -> Tensor:
    """The paper's training loss (Eq. 21).

    ``L = sqrt( mean((x - x_hat)^2) + mean((y - y_hat)^2) )`` — a joint
    RMSE over demand and supply residuals across all stations. ``eps``
    keeps the square root differentiable at an exact-zero residual.
    Dispatches to the fused ``joint_rmse`` op (one recorded node for the
    whole expression).
    """
    _check_shapes(demand_pred, demand_true)
    _check_shapes(supply_pred, supply_true)
    return ops.joint_rmse(demand_pred, demand_true, supply_pred, supply_true, eps)


def _check_shapes(prediction: Tensor, target: Tensor) -> None:
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )

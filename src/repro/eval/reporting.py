"""Plain-text experiment reports (measured-vs-paper tables).

Used by the benchmark harness to print each regenerated table/figure in
a terminal-friendly layout; kept in the library so downstream users can
produce the same reports for their own cities.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.eval.evaluation import EvalResult


def comparison_table(
    title: str,
    rows: Sequence[tuple[str, EvalResult, EvalResult]],
    paper: Mapping[str, tuple[float, float, float, float]],
    city_labels: tuple[str, str] = ("Chi", "LA"),
) -> str:
    """Two-city RMSE/MAE table with the paper's numbers interleaved.

    ``rows`` holds ``(method, first_city_result, second_city_result)``;
    ``paper`` maps method → (c1 RMSE, c1 MAE, c2 RMSE, c2 MAE). Methods
    missing from ``paper`` render as ``nan``.
    """
    first, second = city_labels
    line = "-" * 98
    out = [line, title, line]
    out.append(
        f"{'Method':<12} | {first + ' RMSE':>8} {'(paper)':>8} | {first + ' MAE':>8} {'(paper)':>8} "
        f"| {second + ' RMSE':>8} {'(paper)':>8} | {second + ' MAE':>8} {'(paper)':>8}"
    )
    out.append(line)
    for name, one, two in rows:
        p = paper.get(name, (float("nan"),) * 4)
        out.append(
            f"{name:<12} | {one.rmse:>8.3f} {p[0]:>8.2f} | {one.mae:>8.3f} {p[1]:>8.2f} "
            f"| {two.rmse:>8.3f} {p[2]:>8.2f} | {two.mae:>8.3f} {p[3]:>8.2f}"
        )
    out.append(line)
    return "\n".join(out)


def series_table(
    title: str,
    x_label: str,
    xs: Sequence,
    measured: Mapping[str, Sequence[float]],
    paper: Mapping[str, Sequence[float]] | None = None,
) -> str:
    """One row per series, one column per sweep value (Figs. 5-9 style)."""
    line = "-" * (20 + 12 * len(xs))
    out = [line, title, line]
    out.append(f"{x_label:<20}" + "".join(f"{x:>12}" for x in xs))
    for series, values in measured.items():
        out.append(f"{series:<20}" + "".join(f"{v:>12.3f}" for v in values))
    for series, values in (paper or {}).items():
        out.append(f"{series + ' (paper)':<20}" + "".join(f"{v:>12.2f}" for v in values))
    out.append(line)
    return "\n".join(out)

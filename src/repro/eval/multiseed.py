"""Multi-seed evaluation: mean ± std over repeated runs.

The paper reports Table I/II entries as ``mean ± std`` over runs. This
helper repeats a (train, evaluate) closure across seeds and aggregates,
so benchmark users can reproduce the error bars when they have the
compute budget (the bundled benchmarks default to one seed for CPU
friendliness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.eval.evaluation import EvalResult


@dataclass(frozen=True, slots=True)
class SeedSweepResult:
    """Aggregate of per-seed evaluation results."""

    rmse_mean: float
    rmse_std: float
    mae_mean: float
    mae_std: float
    per_seed: tuple[EvalResult, ...]

    def __str__(self) -> str:
        return (
            f"RMSE={self.rmse_mean:.3f}±{self.rmse_std:.3f} "
            f"MAE={self.mae_mean:.3f}±{self.mae_std:.3f} "
            f"({len(self.per_seed)} seeds)"
        )


def evaluate_over_seeds(
    run: Callable[[int], EvalResult], seeds: Sequence[int]
) -> SeedSweepResult:
    """Run ``run(seed)`` per seed and aggregate RMSE/MAE.

    ``run`` owns the whole pipeline for one seed (build, train,
    evaluate) and returns an :class:`EvalResult`.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    results = tuple(run(int(seed)) for seed in seeds)
    rmses = np.array([r.rmse for r in results])
    maes = np.array([r.mae for r in results])
    return SeedSweepResult(
        rmse_mean=float(rmses.mean()),
        rmse_std=float(rmses.std()),
        mae_mean=float(maes.mean()),
        mae_std=float(maes.std()),
        per_seed=results,
    )

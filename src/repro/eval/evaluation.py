"""Evaluation runner shared by every model and experiment.

Any predictor — STGNN-DJD behind a :class:`~repro.core.Trainer`, a
classical baseline, or an ablated variant — exposes
``predict(t) -> (demand, supply)`` in original (denormalised) units.
The runner sweeps a set of prediction times, applies the paper's
active-station exclusion rule, and reports RMSE/MAE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.data.dataset import BikeShareDataset
from repro.eval.metrics import active_station_mask, mae, rmse, rush_hour_mask


class Predictor(Protocol):
    """Anything that predicts a city's demand/supply at a slot index."""

    def predict(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """Return denormalised ``(demand, supply)`` arrays of shape (n,)."""
        ...


@dataclass(frozen=True, slots=True)
class EvalResult:
    """Aggregate metrics over an evaluation sweep."""

    rmse: float
    mae: float
    num_samples: int

    def __str__(self) -> str:
        return f"RMSE={self.rmse:.3f} MAE={self.mae:.3f} (n={self.num_samples})"


def collect_predictions(
    predictor: Predictor, dataset: BikeShareDataset, indices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Run the predictor over ``indices``.

    Returns ``(demand_true, demand_pred, supply_true, supply_pred)``,
    each ``(len(indices), n)``.
    """
    indices = np.asarray(indices)
    if indices.size == 0:
        raise ValueError("cannot evaluate over an empty index set")
    n = dataset.num_stations
    # Metrics accumulate in float64 even when the predictor serves
    # float32: assignment below upcasts per row.
    demand_pred = np.empty((len(indices), n), dtype=np.float64)
    supply_pred = np.empty((len(indices), n), dtype=np.float64)
    for row, t in enumerate(indices):
        demand_pred[row], supply_pred[row] = predictor.predict(int(t))
    return (
        dataset.demand[indices],
        demand_pred,
        dataset.supply[indices],
        supply_pred,
    )


def evaluate_model(
    predictor: Predictor,
    dataset: BikeShareDataset,
    indices: np.ndarray | None = None,
    window: str | None = None,
) -> EvalResult:
    """Evaluate a predictor on (by default) the dataset's test split.

    Parameters
    ----------
    indices:
        Prediction times to sweep; defaults to the test split.
    window:
        ``"morning"`` or ``"evening"`` restricts the sweep to the
        paper's rush-hour slots (Sec. VII-E); None uses all indices.
    """
    if indices is None:
        _, _, indices = dataset.split_indices()
    indices = np.asarray(indices)
    if window is not None:
        keep = rush_hour_mask(indices, dataset.slots_per_day, window)
        indices = indices[keep]
        if indices.size == 0:
            raise ValueError(f"no indices fall inside the {window!r} rush window")
    demand_true, demand_pred, supply_true, supply_pred = collect_predictions(
        predictor, dataset, indices
    )
    mask = active_station_mask(demand_true, supply_true)
    return EvalResult(
        rmse=rmse(demand_true, demand_pred, supply_true, supply_pred, mask),
        mae=mae(demand_true, demand_pred, supply_true, supply_pred, mask),
        num_samples=int(mask.sum()),
    )

"""Case-study tooling: inter-station dependency heatmaps (paper Sec. VIII).

The paper visualises, for a target station, its learned dependency
on/from its ten nearest stations across the 12 slots of a rush-hour
window (Figs. 11-12), and contrasts it with the monotone distance-decay
dependency a locality-prior baseline (GBike, Fig. 10) would assign.
These helpers extract exactly those matrices, plus an ASCII renderer so
the benchmark harness can show the heatmaps in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import STGNNDJD
from repro.data.dataset import BikeShareDataset

DIRECTIONS = ("from_target", "to_target")


@dataclass(frozen=True, slots=True)
class DependencyHeatmap:
    """Dependency of a target station vs. its nearest neighbors over time.

    ``values[row, col]`` is the dependency at the ``row``-th time slot
    between the target and its ``col``-th nearest station (columns
    ordered by increasing distance, as in the paper's x-axis).
    """

    target_station: int
    neighbor_ids: list[int]
    times: np.ndarray
    values: np.ndarray  # (len(times), len(neighbor_ids))
    direction: str

    def column_monotonicity(self) -> float:
        """Spearman-style check: correlation of dependency with distance rank.

        A locality-prior model yields a strongly negative value (closer
        is always darker); a data-driven model should sit near zero or
        flip sign — the paper's headline case-study observation.
        """
        ranks = np.arange(self.values.shape[1], dtype=np.float64)
        flat_corr = []
        for row in self.values:
            if np.allclose(row.std(), 0.0):
                continue
            flat_corr.append(np.corrcoef(ranks, row)[0, 1])
        return float(np.mean(flat_corr)) if flat_corr else 0.0


def model_dependency_heatmap(
    model: STGNNDJD,
    dataset: BikeShareDataset,
    target_station: int,
    times: np.ndarray,
    neighbors: int = 10,
    direction: str = "from_target",
) -> DependencyHeatmap:
    """Learned PCG-attention dependency heatmap (Figs. 11-12).

    ``direction="from_target"`` reads the influence the target exerts on
    each neighbor (``alpha[neighbor, target]``); ``"to_target"`` reads
    the influence each neighbor exerts on the target
    (``alpha[target, neighbor]``).
    """
    if direction not in DIRECTIONS:
        raise ValueError(f"direction must be one of {DIRECTIONS}, got {direction!r}")
    neighbor_ids = dataset.registry.nearest(target_station, neighbors)
    times = np.asarray(times)
    values = np.empty((len(times), len(neighbor_ids)))
    for row, t in enumerate(times):
        alpha = model.dependency_matrix(dataset.sample(int(t)))
        for col, neighbor in enumerate(neighbor_ids):
            if direction == "from_target":
                values[row, col] = alpha[neighbor, target_station]
            else:
                values[row, col] = alpha[target_station, neighbor]
    return DependencyHeatmap(
        target_station=target_station,
        neighbor_ids=neighbor_ids,
        times=times,
        values=values,
        direction=direction,
    )


def locality_dependency_heatmap(
    dataset: BikeShareDataset,
    target_station: int,
    times: np.ndarray,
    neighbors: int = 10,
    direction: str = "from_target",
    decay_km: float = 1.0,
) -> DependencyHeatmap:
    """Distance-prior dependency heatmap — the Fig. 10 comparator.

    Reproduces what a GBike-style model assumes: dependency is a fixed,
    time-invariant, monotonically decreasing function of distance
    (``exp(-d / decay_km)``, row-normalised over the neighbor set).
    Both directions are identical because the kernel is symmetric.
    """
    if direction not in DIRECTIONS:
        raise ValueError(f"direction must be one of {DIRECTIONS}, got {direction!r}")
    neighbor_ids = dataset.registry.nearest(target_station, neighbors)
    distances = dataset.registry.distance_matrix()[target_station, neighbor_ids]
    kernel = np.exp(-distances / decay_km)
    kernel = kernel / kernel.sum()
    times = np.asarray(times)
    values = np.tile(kernel, (len(times), 1))
    return DependencyHeatmap(
        target_station=target_station,
        neighbor_ids=neighbor_ids,
        times=times,
        values=values,
        direction=direction,
    )


def rush_window_times(
    dataset: BikeShareDataset,
    day: int,
    start_hour: float,
    end_hour: float,
) -> np.ndarray:
    """Absolute slot indices of ``[start_hour, end_hour)`` on a given day.

    The paper uses 07:00-10:00 and 15:00-18:00 windows of 15-minute
    slots (12 rows per heatmap).
    """
    spd = dataset.slots_per_day
    hours = np.arange(spd) * (24.0 / spd)
    in_window = np.nonzero((hours >= start_hour) & (hours < end_hour))[0]
    return day * spd + in_window


def render_heatmap(heatmap: DependencyHeatmap, width: int = 3) -> str:
    """ASCII-art rendering: darker glyphs mean stronger dependency."""
    glyphs = " .:-=+*#%@"
    lo, hi = heatmap.values.min(), heatmap.values.max()
    span = hi - lo if hi > lo else 1.0
    lines = [
        f"dependency ({heatmap.direction}) of station {heatmap.target_station} "
        f"vs {len(heatmap.neighbor_ids)} nearest stations"
    ]
    header = "t\\s |" + "".join(f"{i:>{width}}" for i in range(len(heatmap.neighbor_ids)))
    lines.append(header)
    lines.append("-" * len(header))
    for row_idx, row in enumerate(heatmap.values):
        cells = "".join(
            f"{glyphs[min(int((v - lo) / span * (len(glyphs) - 1)), len(glyphs) - 1)]:>{width}}"
            for v in row
        )
        lines.append(f"{row_idx:>3} |{cells}")
    return "\n".join(lines)

"""Evaluation: paper metrics, sweep runner, and case-study tooling."""

from repro.eval.metrics import (
    active_station_mask,
    mae,
    rmse,
    rush_hour_mask,
    rush_hour_slots,
)
from repro.eval.evaluation import (
    EvalResult,
    Predictor,
    collect_predictions,
    evaluate_model,
)
from repro.eval.reporting import comparison_table, series_table
from repro.eval.multiseed import SeedSweepResult, evaluate_over_seeds
from repro.eval.analysis import (
    StationSummary,
    busiest_hours,
    daily_profile,
    imbalance_by_slot,
    od_concentration,
    od_matrix,
    station_summaries,
)
from repro.eval.casestudy import (
    DependencyHeatmap,
    locality_dependency_heatmap,
    model_dependency_heatmap,
    render_heatmap,
    rush_window_times,
)

__all__ = [
    "rmse",
    "mae",
    "active_station_mask",
    "rush_hour_slots",
    "rush_hour_mask",
    "EvalResult",
    "Predictor",
    "collect_predictions",
    "evaluate_model",
    "DependencyHeatmap",
    "model_dependency_heatmap",
    "locality_dependency_heatmap",
    "render_heatmap",
    "rush_window_times",
    "comparison_table",
    "series_table",
    "SeedSweepResult",
    "evaluate_over_seeds",
    "StationSummary",
    "station_summaries",
    "daily_profile",
    "od_matrix",
    "od_concentration",
    "imbalance_by_slot",
    "busiest_hours",
]

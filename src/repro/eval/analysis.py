"""Exploratory analysis of bike-share datasets.

Operator-facing summaries a deployment would want next to the model:
station activity ranking, temporal demand profiles, OD concentration,
and station imbalance (net outflow) — the quantity rebalancing crews
act on. All pure-numpy over a :class:`~repro.data.BikeShareDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import BikeShareDataset


@dataclass(frozen=True, slots=True)
class StationSummary:
    """Activity summary of one station over the dataset window."""

    station_id: int
    name: str
    total_demand: float
    total_supply: float
    peak_demand_slot: int  # slot-of-day with the highest mean demand
    net_outflow: float  # demand - supply (positive: bleeds bikes)


def station_summaries(dataset: BikeShareDataset) -> list[StationSummary]:
    """Per-station activity summaries, sorted by total demand (desc)."""
    profile = daily_profile(dataset)  # (spd, n)
    summaries = []
    for station in range(dataset.num_stations):
        total_demand = float(dataset.demand[:, station].sum())
        total_supply = float(dataset.supply[:, station].sum())
        summaries.append(
            StationSummary(
                station_id=station,
                name=dataset.registry[station].name,
                total_demand=total_demand,
                total_supply=total_supply,
                peak_demand_slot=int(profile[:, station].argmax()),
                net_outflow=total_demand - total_supply,
            )
        )
    return sorted(summaries, key=lambda s: -s.total_demand)


def daily_profile(dataset: BikeShareDataset) -> np.ndarray:
    """Mean demand per (slot-of-day, station), shape ``(spd, n)``."""
    spd = dataset.slots_per_day
    return dataset.demand.reshape(dataset.num_days, spd, -1).mean(axis=0)


def od_matrix(dataset: BikeShareDataset) -> np.ndarray:
    """Total origin-destination trip counts over the window, ``(n, n)``."""
    return dataset.outflow.sum(axis=0)


def od_concentration(dataset: BikeShareDataset, top_fraction: float = 0.1) -> float:
    """Share of all trips carried by the busiest ``top_fraction`` of OD pairs.

    Bike-share demand is heavy-tailed; values well above
    ``top_fraction`` confirm the generator (or real data) reproduces
    that concentration.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
    flows = np.sort(od_matrix(dataset).reshape(-1))[::-1]
    total = flows.sum()
    if total == 0:
        return 0.0
    keep = max(1, int(len(flows) * top_fraction))
    return float(flows[:keep].sum() / total)


def imbalance_by_slot(dataset: BikeShareDataset) -> np.ndarray:
    """Mean net outflow (demand - supply) per (slot-of-day, station).

    Positive entries are windows where a station structurally loses
    bikes — where an operator schedules replenishment.
    """
    spd = dataset.slots_per_day
    net = dataset.demand - dataset.supply
    return net.reshape(dataset.num_days, spd, -1).mean(axis=0)


def busiest_hours(dataset: BikeShareDataset, count: int = 3) -> list[int]:
    """Slot-of-day indices with the highest citywide mean demand."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    citywide = daily_profile(dataset).sum(axis=1)
    order = np.argsort(-citywide, kind="stable")
    return [int(i) for i in order[:count]]

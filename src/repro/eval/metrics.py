"""Evaluation metrics exactly as the paper defines them (Eqs. 22-23).

Both metrics pool demand and supply residuals:

    RMSE = sqrt( (sum_i (x_i - x_hat_i)^2 + sum_i (y_i - y_hat_i)^2) / 2n )
    MAE  =       (sum_i |x_i - x_hat_i| + sum_i |y_i - y_hat_i|) / 2n

(Note: the paper's Eq. 23 omits the absolute value — taken literally,
positive and negative errors would cancel and a biased model could score
0. We follow the universally used |.| definition, as the paper's
reported numbers clearly do.)

Per Sec. VII-A, stations with no demand or supply at a time slot are
excluded: "we exclude the results of those stations which had no demand
or supply", the common industry practice. The masking helpers implement
that rule, and the rush-hour helpers pick the Sec. VII-E windows.
"""

from __future__ import annotations

import numpy as np


def rmse(
    demand_true: np.ndarray,
    demand_pred: np.ndarray,
    supply_true: np.ndarray,
    supply_pred: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Paper Eq. 22 over flattened (time, station) arrays, optionally masked."""
    dt, dp, st, sp = _prepare(demand_true, demand_pred, supply_true, supply_pred, mask)
    if dt.size == 0:
        return float("nan")
    return float(np.sqrt((np.sum((dt - dp) ** 2) + np.sum((st - sp) ** 2)) / (2 * dt.size)))


def mae(
    demand_true: np.ndarray,
    demand_pred: np.ndarray,
    supply_true: np.ndarray,
    supply_pred: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Paper Eq. 23 (with |.|) over flattened arrays, optionally masked."""
    dt, dp, st, sp = _prepare(demand_true, demand_pred, supply_true, supply_pred, mask)
    if dt.size == 0:
        return float("nan")
    return float((np.sum(np.abs(dt - dp)) + np.sum(np.abs(st - sp))) / (2 * dt.size))


def active_station_mask(demand_true: np.ndarray, supply_true: np.ndarray) -> np.ndarray:
    """True where a station had any demand *or* supply (Sec. VII-A rule)."""
    if demand_true.shape != supply_true.shape:
        raise ValueError("demand and supply shapes must match")
    return (demand_true > 0) | (supply_true > 0)


def rush_hour_slots(
    slots_per_day: int, window: str = "morning"
) -> np.ndarray:
    """Slot-of-day indices of a rush-hour window (Sec. VII-E).

    ``"morning"`` is 07:00-10:00 and ``"evening"`` 17:00-20:00, matching
    the paper. Returns indices into ``0..slots_per_day-1``.
    """
    windows = {"morning": (7.0, 10.0), "evening": (17.0, 20.0)}
    if window not in windows:
        raise ValueError(f"window must be one of {sorted(windows)}, got {window!r}")
    start_hour, end_hour = windows[window]
    hours = np.arange(slots_per_day) * (24.0 / slots_per_day)
    return np.nonzero((hours >= start_hour) & (hours < end_hour))[0]


def rush_hour_mask(
    times: np.ndarray, slots_per_day: int, window: str = "morning"
) -> np.ndarray:
    """Boolean mask over absolute slot indices that fall in a rush window."""
    slots = set(rush_hour_slots(slots_per_day, window).tolist())
    return np.asarray([t % slots_per_day in slots for t in np.asarray(times)])


def _prepare(
    demand_true, demand_pred, supply_true, supply_pred, mask
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    arrays = [np.asarray(a, dtype=np.float64) for a in
              (demand_true, demand_pred, supply_true, supply_pred)]
    shapes = {a.shape for a in arrays}
    if len(shapes) != 1:
        raise ValueError(f"all inputs must share a shape, got {shapes}")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != arrays[0].shape:
            raise ValueError(
                f"mask shape {mask.shape} != data shape {arrays[0].shape}"
            )
        arrays = [a[mask] for a in arrays]
    return tuple(a.reshape(-1) for a in arrays)  # type: ignore[return-value]

"""The online continual-learning loop: extract → retrain → shadow-eval → promote.

:class:`ContinualLearner` closes the loop between serving and training.
Each :meth:`~ContinualLearner.run_cycle`:

1. **extract** — pulls a day-aligned training window out of the live
   flow store (:mod:`repro.continual.extract`), normalizers pinned to
   the deployment's scalers, plus held-back recent slots the window
   deliberately excludes;
2. **retrain** — warm-starts a :class:`~repro.core.trainer.Trainer`
   from the persisted :class:`~repro.core.persistence.TrainingSnapshot`
   (parameters + Adam moments + RNG) and runs a few incremental epochs
   on the extracted window;
3. **shadow-eval** — scores the candidate *and* the live checkpoint on
   the held-back slots through two :class:`~repro.obs.quality.QualityMonitor`
   windows (the paper's Eq. 22 joint RMSE/MAE, same code path as
   serving-time quality), and gates promotion on the candidate beating
   the live model by at least ``improvement_band``;
4. **promote** — atomically writes the candidate checkpoint with a
   fresh quality baseline, pre-flights it through the schema/corruption
   checks (:func:`~repro.core.persistence.load_stgnn`), and rolls it
   out through the deployment's ``reload`` — for a
   :class:`~repro.serve.fleet.router.FleetRouter` that is the staged
   canary → shadow-check → fan-out path, serialized against operator
   reloads by the router's promotion lock.

Every stage sits behind a ``continual.*`` fault seam; a failure at any
stage leaves the live model, checkpoint and snapshot untouched (stages
1–3) or rolled back (stage 4: the previous checkpoint is restored,
quarantined canaries are reloaded onto it and un-quarantined).

Graph evolution (:meth:`~ContinualLearner.apply_station_change`)
handles the city changing shape under the loop: the live store grows or
shrinks in place (pending in-transit inflows for removed stations are
drained), the registry is re-indexed, the deployed checkpoint and the
training snapshot are remapped parameter-by-parameter
(:mod:`repro.continual.evolve`), and the evolved weights roll out
through the same staged reload — no process restart.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

import numpy as np

from repro.core.persistence import (
    load_quality_baseline,
    load_stgnn,
    load_training_snapshot,
    save_checkpoint,
    save_training_snapshot,
)
from repro.core.trainer import Trainer, TrainingConfig
from repro.continual.evolve import (
    GraphEvolution,
    evolve_flow_store,
    evolve_model,
    evolve_registry,
    evolve_sharded_store,
    evolve_training_snapshot,
)
from repro.continual.extract import extract_training_dataset, holdback_samples
from repro.data.normalize import MinMaxNormalizer
from repro.data.stations import StationRegistry
from repro.faults import fault_point, fault_transform
from repro.obs.events import emit_event
from repro.obs.quality import QualityBaseline, QualityConfig, QualityMonitor
from repro.tensor import inference_mode
from repro.utils import get_logger

logger = get_logger("continual")


class ContinualError(RuntimeError):
    """A continual cycle failed; the live deployment is unchanged."""


class PromotionRolledBack(ContinualError):
    """Promotion failed after the checkpoint write; the previous
    checkpoint was restored and quarantined replicas recovered."""


@dataclass(frozen=True, slots=True)
class ContinualConfig:
    """Knobs for the update loop.

    ``train_days`` must leave the extracted window a usable day-aligned
    70/10/rest split *after* the sampling horizon — with the paper's
    ``d = 7`` long window that means two weeks or more.
    ``improvement_band`` is the relative rolling-RMSE improvement the
    candidate must show on the held-back slots before it ships
    (``0.0`` = "at least as good", ``0.05`` = "5% better").
    """

    checkpoint_path: str
    snapshot_path: str
    train_days: int = 14
    retrain_epochs: int = 2
    holdback_slots: int = 8
    improvement_band: float = 0.0
    seed: int = 0
    training: TrainingConfig | None = None

    def __post_init__(self) -> None:
        if self.train_days < 1:
            raise ValueError(f"train_days must be >= 1, got {self.train_days}")
        if self.retrain_epochs < 1:
            raise ValueError(
                f"retrain_epochs must be >= 1, got {self.retrain_epochs}"
            )
        if self.holdback_slots < 1:
            raise ValueError(
                f"holdback_slots must be >= 1, got {self.holdback_slots}"
            )
        if not 0.0 <= self.improvement_band < 1.0:
            raise ValueError(
                f"improvement_band must be in [0, 1), got {self.improvement_band}"
            )
        if self.training is not None and self.training.snapshot_path is not None:
            raise ValueError(
                "continual training config must not set snapshot_path — the "
                "loop owns snapshot persistence (ContinualConfig.snapshot_path)"
            )


@dataclass(slots=True)
class CycleResult:
    """What one :meth:`ContinualLearner.run_cycle` did."""

    cycle: int
    window_start: int
    window_end: int
    candidate_rmse: float
    candidate_mae: float
    live_rmse: float
    live_mae: float
    eval_samples: int
    promoted: bool
    model_version: int


class ContinualLearner:
    """Drives incremental retraining against a live deployment.

    ``store`` is the live :class:`~repro.serve.state.FlowStateStore` or
    :class:`~repro.serve.fleet.shard.ShardedFlowStore` (ingestion keeps
    writing to it while cycles run — extraction reads a consistent
    finalized window under the store lock). ``deploy`` is anything with
    the serving reload contract — a single
    :class:`~repro.serve.service.PredictionService` or a whole
    :class:`~repro.serve.fleet.router.FleetRouter`. The checkpoint at
    ``config.checkpoint_path`` and the snapshot at
    ``config.snapshot_path`` must exist (the initial offline training
    writes both); the loop keeps the pair in lockstep from then on.
    """

    def __init__(
        self,
        store,
        deploy,
        registry: StationRegistry,
        config: ContinualConfig,
        *,
        demand_normalizer: MinMaxNormalizer,
        supply_normalizer: MinMaxNormalizer,
        flow_scale: float,
    ) -> None:
        self.store = store
        self.deploy = deploy
        self.registry = registry
        self.config = config
        self.demand_normalizer = demand_normalizer
        self.supply_normalizer = supply_normalizer
        self.flow_scale = float(flow_scale)
        self.cycles = 0
        self.promotions = 0

    # ------------------------------------------------------------------
    # One full cycle
    # ------------------------------------------------------------------
    def run_cycle(self) -> CycleResult:
        """Extract, retrain, shadow-evaluate, maybe promote. Returns the
        cycle's scorecard; raises on stage failure (live model intact,
        except a post-write promotion failure which is rolled back and
        reported as :class:`PromotionRolledBack`)."""
        cycle = self.cycles
        self.cycles += 1

        # -- extract ----------------------------------------------------
        fault_point("continual.extract")
        dataset, start = extract_training_dataset(
            self.store,
            self.registry,
            train_days=self.config.train_days,
            holdback_slots=self.config.holdback_slots,
            demand_normalizer=self.demand_normalizer,
            supply_normalizer=self.supply_normalizer,
            flow_scale=self.flow_scale,
            name=f"continual-cycle{cycle}",
        )
        eval_samples = holdback_samples(self.store, self.config.holdback_slots)

        # -- retrain ----------------------------------------------------
        fault_point("continual.retrain")
        snapshot = load_training_snapshot(self.config.snapshot_path)
        candidate = load_stgnn(self.config.checkpoint_path)
        trainer = Trainer(candidate, dataset, self._training_config())
        trainer.warm_start(snapshot)
        history = trainer.fit(self.config.retrain_epochs)
        new_snapshot = trainer.capture_snapshot(
            epoch=snapshot.epoch + len(history.train_loss), history=history
        )
        candidate.eval()

        # -- shadow-evaluate -------------------------------------------
        fault_point("continual.evaluate")
        live = load_stgnn(self.config.checkpoint_path)
        cand_rolling = self._score(candidate, eval_samples)
        live_rolling = self._score(live, eval_samples)
        cand_rmse = float(cand_rolling["rmse"])
        live_rmse = float(live_rolling["rmse"])
        promoted = bool(
            np.isfinite(cand_rmse)
            and np.isfinite(live_rmse)
            and cand_rmse <= live_rmse * (1.0 - self.config.improvement_band)
        )
        emit_event(
            "event", "continual.shadow_eval",
            cycle=cycle,
            candidate_rmse=cand_rmse,
            candidate_mae=float(cand_rolling["mae"]),
            live_rmse=live_rmse,
            live_mae=float(live_rolling["mae"]),
            samples=int(cand_rolling["samples"]),
            improvement_band=self.config.improvement_band,
            promoted=promoted,
            ts=time.time(),
        )

        # -- promote ----------------------------------------------------
        version = self.deploy.model_version
        if promoted:
            baseline = QualityBaseline(
                rmse=cand_rmse,
                mae=float(cand_rolling["mae"]),
                samples=int(cand_rolling["samples"]),
            )
            version = self._promote(candidate, live, baseline, new_snapshot, cycle)
            self.promotions += 1

        result = CycleResult(
            cycle=cycle,
            window_start=start,
            window_end=start + dataset.num_slots,
            candidate_rmse=cand_rmse,
            candidate_mae=float(cand_rolling["mae"]),
            live_rmse=live_rmse,
            live_mae=float(live_rolling["mae"]),
            eval_samples=int(cand_rolling["samples"]),
            promoted=promoted,
            model_version=version,
        )
        logger.info(
            "cycle %d: candidate %.4f vs live %.4f rmse over %d slots -> %s",
            cycle, cand_rmse, live_rmse, result.eval_samples,
            "promoted" if promoted else "kept live model",
        )
        return result

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def _training_config(self) -> TrainingConfig:
        base = self.config.training or TrainingConfig(
            epochs=self.config.retrain_epochs, seed=self.config.seed
        )
        # Early stopping across a handful of incremental epochs would
        # mostly fire on noise; the band gate is the real quality check.
        return dataclasses.replace(
            base, epochs=self.config.retrain_epochs,
            patience=max(base.patience, self.config.retrain_epochs),
            resume=False,
        )

    def _score(self, model, samples) -> dict:
        """Rolling Eq.-22 metrics of ``model`` over held-back samples.

        Forecasts are recorded and reconciled through a throwaway
        :class:`QualityMonitor` — the exact serving-time code path — so
        the shadow numbers are directly comparable to the live quality
        windows and to an offline evaluation.
        """
        monitor = QualityMonitor(
            QualityConfig(window=len(samples), min_samples=1)
        )
        for sample in samples:
            with inference_mode():
                demand_n, supply_n = model(sample)
            demand = np.asarray(demand_n.data, dtype=np.float64)
            supply = np.asarray(supply_n.data, dtype=np.float64)
            if demand.ndim == 2:  # multi-horizon head: score horizon 0
                demand, supply = demand[:, 0], supply[:, 0]
            monitor.record_forecast(
                sample.t,
                self.demand_normalizer.inverse_transform(demand),
                self.supply_normalizer.inverse_transform(supply),
            )
        monitor.on_rollover(self.store, [sample.t for sample in samples])
        rolling = monitor.rolling(0)
        if rolling is None or rolling["samples"] < len(samples):
            raise ContinualError(
                "shadow evaluation could not reconcile every held-back slot "
                "(store retention moved under the cycle?)"
            )
        return rolling

    def _promote(
        self, candidate, live, baseline: QualityBaseline,
        new_snapshot, cycle: int,
    ) -> int:
        path = self.config.checkpoint_path
        old_baseline = load_quality_baseline(path)
        fault_point("continual.promote")
        save_checkpoint(candidate, path, quality_baseline=baseline)
        try:
            # Corruption seam + pre-flight: whatever is on disk must pass
            # the checkpoint schema/corruption gate before any replica is
            # told to load it — a bad artifact never reaches the fleet.
            fault_transform("continual.promote.artifact", path)
            load_stgnn(path)
            version = self.deploy.reload(path)
        except BaseException as error:
            self._rollback(live, old_baseline)
            emit_event(
                "event", "continual.rolled_back",
                cycle=cycle, error=str(error), ts=time.time(),
            )
            raise PromotionRolledBack(
                f"promotion of cycle {cycle} rolled back: {error}"
            ) from error
        save_training_snapshot(self.config.snapshot_path, new_snapshot)
        emit_event(
            "event", "continual.promoted",
            cycle=cycle,
            model_version=version,
            candidate_rmse=baseline.rmse,
            candidate_mae=baseline.mae,
            ts=time.time(),
        )
        return version

    def _rollback(self, live, old_baseline: QualityBaseline | None) -> None:
        """Restore the pre-promotion checkpoint and recover the fleet.

        The candidate may already sit on disk and in a quarantined
        canary; rewrite the previous weights (atomic, same path the
        watchers poll), reload any quarantined replica onto them, and
        lift the quarantine — the ladder ends with the fleet exactly as
        before the promotion attempt.
        """
        path = self.config.checkpoint_path
        save_checkpoint(live, path, quality_baseline=old_baseline)
        restore = getattr(self.deploy, "restore_replica", None)
        if restore is not None:
            for index in sorted(self.deploy.quarantined):
                self.deploy.replicas[index].reload(path)
                restore(index)
        logger.warning("promotion rolled back; previous checkpoint restored")

    # ------------------------------------------------------------------
    # Graph evolution: the station set changes under a live deployment
    # ------------------------------------------------------------------
    def apply_station_change(
        self,
        evolution: GraphEvolution,
        new_stations=None,
    ) -> float:
        """Grow/shrink the whole deployment to a new station set, live.

        Ordering matters: the store evolves first (its config is what
        ``reload`` checks candidate models against), then serving caches
        and quality windows are flushed (their arrays are sized to the
        old city), then the evolved checkpoint rolls out through the
        staged reload, and finally the on-disk training snapshot is
        remapped so the next cycle warm-starts in the new shape.
        Returns the pending in-transit inflow mass drained from removed
        stations.
        """
        if evolution.old_num_stations != self.store.config.num_stations:
            raise ValueError(
                f"evolution starts from {evolution.old_num_stations} stations "
                f"but the store has {self.store.config.num_stations}"
            )
        old_model = load_stgnn(self.config.checkpoint_path)
        snapshot = load_training_snapshot(self.config.snapshot_path)

        if hasattr(self.store, "shards"):
            drained = evolve_sharded_store(self.store, evolution)
        else:
            drained = evolve_flow_store(self.store, evolution)
        self.registry = evolve_registry(self.registry, evolution, new_stations)
        for service in self._services():
            service.on_graph_evolved()

        new_model = evolve_model(old_model, evolution, seed=self.config.seed)
        # The old quality baseline scored a different station set; drop
        # it — the next promotion embeds a fresh one.
        save_checkpoint(new_model, self.config.checkpoint_path)
        self.deploy.reload(self.config.checkpoint_path)
        save_training_snapshot(
            self.config.snapshot_path,
            evolve_training_snapshot(
                snapshot, old_model.config, evolution, seed=self.config.seed
            ),
        )
        emit_event(
            "event", "continual.graph_evolved",
            old_stations=evolution.old_num_stations,
            new_stations=evolution.num_stations,
            removed=list(evolution.removed),
            added=evolution.new_count,
            drained_inflow=float(drained),
            ts=time.time(),
        )
        logger.info(
            "graph evolved %d -> %d stations (drained %.0f in-transit inflow)",
            evolution.old_num_stations, evolution.num_stations, drained,
        )
        return drained

    def _services(self):
        replicas = getattr(self.deploy, "replicas", None)
        return list(replicas) if replicas is not None else [self.deploy]

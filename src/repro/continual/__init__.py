"""Online continual learning with shadow-evaluated auto-deploy.

The serving stack (:mod:`repro.serve`) predicts from live flow state;
this package closes the loop by training on it. A
:class:`~repro.continual.loop.ContinualLearner` periodically extracts
recent finalized history from the live store (bitwise equal to the
batch tensor builder — the store's equivalence guarantee), warm-starts
an incremental retrain from the last training snapshot, shadow-
evaluates the candidate against the live model on held-back slots with
the paper's Eq. 22 joint metrics, and — only when the candidate clears
a configurable improvement band — promotes it through the existing
atomic checkpoint write and staged fleet reload. Station churn is
handled in place by :mod:`repro.continual.evolve`: flow state, graphs,
model parameters and optimizer moments all grow or shrink to the new
city without a restart.

Chaos seams: ``continual.extract``, ``continual.retrain``,
``continual.evaluate``, ``continual.promote`` (plus the
``continual.promote.artifact`` transform over the written checkpoint
path) — see :mod:`repro.faults`.
"""

from repro.continual.evolve import (
    GraphEvolution,
    evolve_array,
    evolve_flow_store,
    evolve_model,
    evolve_registry,
    evolve_sharded_store,
    evolve_state_dict,
    evolve_training_snapshot,
)
from repro.continual.extract import (
    InsufficientHistoryError,
    extract_training_dataset,
    holdback_samples,
    window_bounds,
)
from repro.continual.loop import (
    ContinualConfig,
    ContinualError,
    ContinualLearner,
    CycleResult,
    PromotionRolledBack,
)

__all__ = [
    "ContinualConfig",
    "ContinualError",
    "ContinualLearner",
    "CycleResult",
    "GraphEvolution",
    "InsufficientHistoryError",
    "PromotionRolledBack",
    "evolve_array",
    "evolve_flow_store",
    "evolve_model",
    "evolve_registry",
    "evolve_sharded_store",
    "evolve_state_dict",
    "evolve_training_snapshot",
    "extract_training_dataset",
    "holdback_samples",
    "window_bounds",
]

"""Graph evolution: grow/shrink the station set without a restart.

Real systems open and close docked stations while the service runs.
Every station-indexed structure in the stack — the ``(T, n, n)`` flow
tensors, the FCG/PCG (recomputed per forward from node features), the
model's parameter matrices, the optimizer's Adam moments — carries the
station axis explicitly, so evolving the graph is a *remap*, not a
retrain:

* A :class:`GraphEvolution` names which old stations survive (``kept``,
  ascending; a kept station's new id is its position in ``kept``) and
  how many brand-new stations are appended after them.
* :func:`evolve_model` builds a **donor** model at the new size from a
  seeded RNG — running the exact constructor-time initializers (xavier
  fans at the new width, the projection's identity stack, the
  PatternGNN value scaling) — then copies every kept station's rows and
  columns out of the old parameters. New stations keep the donor's
  deterministic initialization; two calls with the same seed produce
  bitwise-identical models.
* :func:`evolve_flow_store` / :func:`evolve_sharded_store` remap the
  live ring buffers in place under the store lock (kept rows/columns
  copied, removed stations' pending inflows drained and counted), so
  serving never restarts.
* :func:`evolve_training_snapshot` carries the warm-start state across:
  kept positions of the Adam moments move with their parameters, new
  positions start at zero (a fresh station has no gradient history).

Because a kept position is copied verbatim, **grow-then-shrink back to
the original station set is bitwise-identity** on every parameter — the
golden test ``tests/golden/test_golden_evolution.py`` pins this all the
way through FCG/PCG construction to the forward outputs.
"""

from __future__ import annotations

import dataclasses
import re

import numpy as np

from repro.core.model import STGNNDJD
from repro.core.persistence import TrainingSnapshot, training_fingerprint
from repro.data.stations import Station, StationRegistry
from repro.serve.fleet.shard import ShardedFlowStore, ShardMap
from repro.serve.state import FlowStateStore


@dataclasses.dataclass(frozen=True)
class GraphEvolution:
    """One station-set change: which old ids survive, how many appear.

    ``kept`` lists the surviving *old* station ids in ascending order; a
    kept station's **new** id is its index in ``kept``. ``new_count``
    brand-new stations are appended after the kept block (new ids
    ``len(kept) .. len(kept)+new_count-1``).
    """

    old_num_stations: int
    kept: tuple[int, ...]
    new_count: int = 0

    def __post_init__(self) -> None:
        if self.old_num_stations < 1:
            raise ValueError("old_num_stations must be >= 1")
        if self.new_count < 0:
            raise ValueError(f"new_count must be >= 0, got {self.new_count}")
        kept = tuple(int(i) for i in self.kept)
        object.__setattr__(self, "kept", kept)
        if not kept:
            raise ValueError("at least one station must be kept")
        if list(kept) != sorted(set(kept)):
            raise ValueError("kept must be strictly ascending without duplicates")
        if kept[0] < 0 or kept[-1] >= self.old_num_stations:
            raise ValueError(
                f"kept ids must be in 0..{self.old_num_stations - 1}"
            )
        if self.num_stations < 2:
            raise ValueError(
                "the evolved city needs at least 2 stations (model minimum)"
            )

    @property
    def num_stations(self) -> int:
        return len(self.kept) + self.new_count

    @property
    def removed(self) -> tuple[int, ...]:
        kept = set(self.kept)
        return tuple(
            i for i in range(self.old_num_stations) if i not in kept
        )

    @property
    def kept_array(self) -> np.ndarray:
        return np.asarray(self.kept, dtype=np.int64)

    def is_identity(self) -> bool:
        return (
            self.new_count == 0
            and len(self.kept) == self.old_num_stations
        )

    @classmethod
    def grow(cls, num_stations: int, add: int) -> "GraphEvolution":
        """Append ``add`` new stations, keeping every existing one."""
        return cls(num_stations, tuple(range(num_stations)), add)

    @classmethod
    def shrink(cls, num_stations: int, removed) -> "GraphEvolution":
        """Retire the stations in ``removed``, keeping the rest."""
        gone = {int(i) for i in removed}
        kept = tuple(i for i in range(num_stations) if i not in gone)
        return cls(num_stations, kept, 0)


# ----------------------------------------------------------------------
# Parameter remapping
# ----------------------------------------------------------------------
#: Parameters with no station-indexed axis: copied verbatim.
_VERBATIM = tuple(
    re.compile(p)
    for p in (
        r"flow_conv\.(short|long)_(in|out)flow_conv\.weight$",
        r"predictor\.bias$",
    )
)

#: name pattern -> per-axis flags (True = station-indexed). A station
#: axis has length ``blocks * n`` for an integer block count inferred
#: from the shapes (2 for the [U_in; U_out] concat transforms, the head
#: count for the attention mix, the branch count for the predictor).
_STATION_AXES = tuple(
    (re.compile(p), flags)
    for p, flags in (
        (r"flow_conv\.(short|long)_(in|out)flow_conv\.bias$", (True, True)),
        (r"flow_conv\.gate_(in|out)flow$", (True, True)),
        (r"flow_conv\.projection$", (True, True)),
        (r"free_features$", (True, True)),
        (r"flow_gnn\.aggregators\.\d+\.transform\.weight$", (True, True)),
        (r"flow_gnn\.aggregators\.\d+\.transform\.bias$", (True,)),
        (r"flow_gnn\.transforms\.\d+\.weight$", (True, True)),
        (r"flow_gnn\.transforms\.\d+\.bias$", (True,)),
        (r"pattern_gnn\.layers\.\d+\.mix$", (True, True)),
        (r"pattern_gnn\.layers\.\d+\.attentions\.\d+\.weight$", (True, True)),
        (
            r"pattern_gnn\.layers\.\d+\.attentions\.\d+\.attn_(src|dst)$",
            (True, False),
        ),
        (r"pattern_gnn\.layers\.\d+\.(values|selves)\.\d+\.weight$", (True, True)),
        (r"pattern_gnn\.pools\.\d+\.transform\.weight$", (True, True)),
        (r"pattern_gnn\.pools\.\d+\.transform\.bias$", (True,)),
        (r"pattern_gnn\.transforms\.\d+\.weight$", (True, True)),
        (r"pattern_gnn\.transforms\.\d+\.bias$", (True,)),
        (r"predictor\.weight$", (True, False)),
    )
)


def _station_axis_flags(name: str, ndim: int) -> tuple[bool, ...] | None:
    """Which axes of parameter ``name`` index stations; None = verbatim."""
    for pattern in _VERBATIM:
        if pattern.match(name):
            return None
    for pattern, flags in _STATION_AXES:
        if pattern.match(name):
            if len(flags) != ndim:
                raise ValueError(
                    f"parameter {name!r} has {ndim} axes, rule expects "
                    f"{len(flags)}"
                )
            return flags
    raise KeyError(
        f"no graph-evolution rule for parameter {name!r}; add one to "
        f"repro.continual.evolve before evolving this architecture"
    )


def evolve_array(
    name: str,
    old: np.ndarray,
    donor: np.ndarray,
    evolution: GraphEvolution,
) -> np.ndarray:
    """Copy kept station positions of ``old`` into a copy of ``donor``.

    ``donor`` supplies the values for new-station positions (a seeded
    fresh initialization, or zeros for optimizer moments). Verbatim
    parameters ignore the donor entirely.
    """
    old_n = evolution.old_num_stations
    new_n = evolution.num_stations
    flags = _station_axis_flags(name, old.ndim)
    out = np.array(donor, copy=True)
    if flags is None:
        if old.shape != donor.shape:
            raise ValueError(
                f"verbatim parameter {name!r} changed shape: "
                f"{old.shape} -> {donor.shape}"
            )
        out[...] = old
        return out
    kept = evolution.kept_array
    src_axes = []
    dst_axes = []
    for axis, station_indexed in enumerate(flags):
        if not station_indexed:
            if old.shape[axis] != donor.shape[axis]:
                raise ValueError(
                    f"non-station axis {axis} of {name!r} changed size: "
                    f"{old.shape[axis]} -> {donor.shape[axis]}"
                )
            src_axes.append(np.arange(old.shape[axis]))
            dst_axes.append(np.arange(donor.shape[axis]))
            continue
        blocks, rem = divmod(old.shape[axis], old_n)
        if rem or blocks < 1 or donor.shape[axis] != blocks * new_n:
            raise ValueError(
                f"axis {axis} of {name!r} is not station-blocked: "
                f"old {old.shape[axis]} (n={old_n}), "
                f"donor {donor.shape[axis]} (n={new_n})"
            )
        src_axes.append(
            np.concatenate([b * old_n + kept for b in range(blocks)])
        )
        dst_axes.append(
            np.concatenate(
                [b * new_n + np.arange(len(kept)) for b in range(blocks)]
            )
        )
    out[np.ix_(*dst_axes)] = old[np.ix_(*src_axes)]
    return out


def evolve_state_dict(
    old_state: dict[str, np.ndarray],
    donor_state: dict[str, np.ndarray],
    evolution: GraphEvolution,
) -> dict[str, np.ndarray]:
    """Remap a full parameter dict; name sets must match exactly."""
    if set(old_state) != set(donor_state):
        missing = set(donor_state) - set(old_state)
        extra = set(old_state) - set(donor_state)
        raise KeyError(
            f"state dicts disagree (missing={sorted(missing)}, "
            f"extra={sorted(extra)}); graph evolution cannot change the "
            f"architecture, only the station count"
        )
    return {
        name: evolve_array(name, old_state[name], donor_state[name], evolution)
        for name in donor_state
    }


def evolve_model(
    model: STGNNDJD, evolution: GraphEvolution, seed: int = 0
) -> STGNNDJD:
    """A new-size model: kept stations keep their weights, new ones get
    a deterministic seeded initialization (the donor's constructor)."""
    if model.config.num_stations != evolution.old_num_stations:
        raise ValueError(
            f"model has {model.config.num_stations} stations, evolution "
            f"starts from {evolution.old_num_stations}"
        )
    new_config = dataclasses.replace(
        model.config, num_stations=evolution.num_stations
    )
    donor = STGNNDJD(new_config, rng=np.random.default_rng(seed))
    state = evolve_state_dict(
        model.state_dict(), donor.state_dict(), evolution
    )
    donor.load_state_dict(state)
    donor.eval()
    return donor


def evolve_training_snapshot(
    snapshot: TrainingSnapshot,
    old_config,
    evolution: GraphEvolution,
    seed: int = 0,
) -> TrainingSnapshot:
    """Carry warm-start state across a station-set change.

    Model parameters (and the early-stopping best state, if present)
    remap like the live model; Adam's first/second moments move with
    their kept positions and start at **zero** for new stations — a
    fresh station has no gradient history, and nonzero moments would
    bias its first updates. The fingerprint is recomputed for the new
    station count so :meth:`repro.core.trainer.Trainer.warm_start`
    accepts the evolved snapshot against an evolved model.
    """
    if old_config.num_stations != evolution.old_num_stations:
        raise ValueError(
            f"config has {old_config.num_stations} stations, evolution "
            f"starts from {evolution.old_num_stations}"
        )
    new_config = dataclasses.replace(
        old_config, num_stations=evolution.num_stations
    )
    donor = STGNNDJD(new_config, rng=np.random.default_rng(seed))
    donor_state = donor.state_dict()
    names = [name for name, _ in donor.named_parameters()]
    if len(names) != len(snapshot.adam_m):
        raise ValueError(
            f"snapshot carries {len(snapshot.adam_m)} moment arrays for "
            f"{len(names)} parameters; architecture mismatch"
        )
    model_state = evolve_state_dict(
        snapshot.model_state, donor_state, evolution
    )
    best_state = None
    if snapshot.best_state is not None:
        best_state = evolve_state_dict(
            snapshot.best_state, donor_state, evolution
        )
    adam_m: dict[str, np.ndarray] = {}
    adam_v: dict[str, np.ndarray] = {}
    for i, name in enumerate(names):
        key = f"{i:04d}"
        zero = np.zeros_like(donor_state[name])
        adam_m[key] = evolve_array(
            name, snapshot.adam_m[key], zero, evolution
        )
        adam_v[key] = evolve_array(
            name, snapshot.adam_v[key], np.zeros_like(zero), evolution
        )
    return dataclasses.replace(
        snapshot,
        model_state=model_state,
        best_state=best_state,
        adam_m=adam_m,
        adam_v=adam_v,
        fingerprint=training_fingerprint(donor),
    )


def evolve_registry(
    registry: StationRegistry,
    evolution: GraphEvolution,
    new_stations: list[Station] | None = None,
) -> StationRegistry:
    """The evolved station registry (kept stations re-id'd by position).

    ``new_stations`` supplies metadata for appended stations; omitted,
    they get placeholder coordinates at the kept stations' centroid.
    """
    stations = list(registry)
    picked = [stations[i] for i in evolution.kept]
    if new_stations is not None and len(new_stations) != evolution.new_count:
        raise ValueError(
            f"expected {evolution.new_count} new stations, got "
            f"{len(new_stations)}"
        )
    out: list[Station] = []
    for new_id, station in enumerate(picked):
        out.append(
            dataclasses.replace(station, station_id=new_id)
        )
    if evolution.new_count:
        lon = float(np.mean([s.longitude for s in picked]))
        lat = float(np.mean([s.latitude for s in picked]))
        for j in range(evolution.new_count):
            new_id = len(picked) + j
            if new_stations is not None:
                station = dataclasses.replace(
                    new_stations[j], station_id=new_id
                )
            else:
                station = Station(
                    station_id=new_id, longitude=lon, latitude=lat,
                    name=f"new-{new_id}",
                )
            out.append(station)
    return StationRegistry(out)


# ----------------------------------------------------------------------
# Live store evolution
# ----------------------------------------------------------------------
def evolve_flow_store(
    store: FlowStateStore, evolution: GraphEvolution
) -> float:
    """Grow/shrink a live store's station axes in place.

    Kept stations' retained rows and columns (and pending inflows) move
    to their new positions; new stations start with zero history;
    removed stations' pending inflows are drained — returned as the
    dropped event mass so callers can account for the retired trips.
    Runs under the store lock and bumps :attr:`FlowStateStore.version`,
    invalidating every forecast cache keyed on the old windows.
    """
    if store.owned_stations is not None:
        raise ValueError(
            "evolve a partitioned store through its ShardedFlowStore"
        )
    with store._lock:
        old_cfg = store.config
        if old_cfg.num_stations != evolution.old_num_stations:
            raise ValueError(
                f"store has {old_cfg.num_stations} stations, evolution "
                f"starts from {evolution.old_num_stations}"
            )
        new_n = evolution.num_stations
        kept = evolution.kept_array
        k = len(kept)
        new_cfg = dataclasses.replace(old_cfg, num_stations=new_n)
        cap = store._capacity
        new_inflow = np.zeros((cap, new_n, new_n))
        new_outflow = np.zeros((cap, new_n, new_n))
        new_inflow[:, :k, :k] = store._inflow[:, kept][:, :, kept]
        new_outflow[:, :k, :k] = store._outflow[:, kept][:, :, kept]
        drained = 0.0
        new_pending: dict[int, np.ndarray] = {}
        for slot, pending in store._pending_inflow.items():
            sub = pending[np.ix_(kept, kept)]
            drained += float(pending.sum()) - float(sub.sum())
            if sub.any():
                remapped = np.zeros((new_n, new_n))
                remapped[:k, :k] = sub
                new_pending[slot] = remapped
        store.config = new_cfg
        store._inflow = new_inflow
        store._outflow = new_outflow
        store._pending_inflow = new_pending
        store._rows = new_n
        store._owned_sel = slice(0, new_n)
        kk, d = new_cfg.short_window, new_cfg.long_days
        store._short_in = np.empty((kk, new_n, new_n))
        store._short_out = np.empty((kk, new_n, new_n))
        store._long_in = np.empty((d, new_n, new_n))
        store._long_out = np.empty((d, new_n, new_n))
        store._zero_target = np.zeros(new_n)
        store._zero_target.setflags(write=False)
        store.version += 1
        return drained


def evolve_sharded_store(
    fleet: ShardedFlowStore, evolution: GraphEvolution
) -> float:
    """Grow/shrink a sharded store in place (rebalanced shard blocks).

    Retained history is assembled, remapped exactly like the single
    store's, and redistributed over a fresh :class:`ShardMap` at the new
    station count (shard count capped at the new count). The fleet
    object identity — and its registered rollover listeners — survive,
    so services keep their store reference across the evolution.
    """
    with fleet._lock:
        fleet._heal()
        old_cfg = fleet.config
        if old_cfg.num_stations != evolution.old_num_stations:
            raise ValueError(
                f"store has {old_cfg.num_stations} stations, evolution "
                f"starts from {evolution.old_num_stations}"
            )
        frontier = fleet.frontier
        old_version = fleet.version
        new_n = evolution.num_stations
        kept = evolution.kept_array
        k = len(kept)
        first, inflow, outflow = fleet.retained_tensors()
        new_inflow = np.zeros((inflow.shape[0], new_n, new_n))
        new_outflow = np.zeros_like(new_inflow)
        new_inflow[:, :k, :k] = inflow[:, kept][:, :, kept]
        new_outflow[:, :k, :k] = outflow[:, kept][:, :, kept]
        # Assemble full-city pending inflow per slot before remapping.
        old_n = old_cfg.num_stations
        pending_full: dict[int, np.ndarray] = {}
        for shard in fleet.shards:
            sel = shard.owned_selector
            for slot, pending in shard._pending_inflow.items():
                full = pending_full.get(slot)
                if full is None:
                    full = np.zeros((old_n, old_n))
                    pending_full[slot] = full
                full[sel] = pending
        new_cfg = dataclasses.replace(old_cfg, num_stations=new_n)
        num_shards = min(fleet.map.num_shards, new_n)
        fleet.map = ShardMap(new_n, num_shards)
        fleet.config = new_cfg
        shards: list[FlowStateStore] = []
        for i in range(num_shards):
            shard = FlowStateStore(
                new_cfg,
                frontier=frontier,
                owned_stations=fleet.map.stations(i),
                metric_prefix=f"serve.shard{i}",
            )
            sel = shard.owned_selector
            for idx, slot in enumerate(range(first, frontier + 1)):
                row = slot % shard._capacity
                shard._inflow[row] = new_inflow[idx][sel]
                shard._outflow[row] = new_outflow[idx][sel]
            shard._warm_started = True
            shards.append(shard)
        drained = 0.0
        for slot, full in pending_full.items():
            sub = full[np.ix_(kept, kept)]
            drained += float(full.sum()) - float(sub.sum())
            if not sub.any():
                continue
            remapped = np.zeros((new_n, new_n))
            remapped[:k, :k] = sub
            for shard in shards:
                part = remapped[shard.owned_selector]
                if part.any():
                    shard._pending_inflow[slot] = part.copy()
        # Keep the fleet version monotonic across the rebuild: forecast
        # caches key on it, and a reset-to-zero could collide with an
        # old key.
        shards[0].version = old_version + 1
        fleet.shards = shards
        fleet._zero_target = np.zeros(new_n)
        fleet._zero_target.setflags(write=False)
        return drained

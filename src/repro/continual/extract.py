"""Turn live flow-store history into training-ready datasets.

The continual-learning loop (:mod:`repro.continual.loop`) retrains on
what the serving fleet has actually observed. This module is the bridge
from :class:`~repro.serve.state.FlowStateStore` /
:class:`~repro.serve.fleet.shard.ShardedFlowStore` back into the
offline training stack:

* :func:`extract_training_dataset` pulls a day-aligned multi-day window
  through ``history_window()`` — finalized slots only, **bitwise equal**
  to what :func:`repro.data.flows.build_flow_tensors` would produce from
  the same trip log (the store's equivalence guarantee) — and wraps it
  in a :class:`~repro.data.dataset.BikeShareDataset` whose normalizers
  are *pinned to the deployment's scalers* rather than refitted, so the
  candidate model trains in the same input space the live model serves
  in.
* :func:`holdback_samples` assembles :class:`FlowSample` bundles for
  the most recent finalized slots — the held-back span the shadow
  evaluation scores candidate vs. live on. These slots sit *after* the
  training window's end, so the candidate is never evaluated on data it
  just trained on.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import BikeShareDataset, FlowDataConfig, FlowSample
from repro.data.normalize import MinMaxNormalizer
from repro.data.stations import StationRegistry


class InsufficientHistoryError(RuntimeError):
    """The store does not retain enough finalized history for a window.

    Raised instead of silently shrinking the training window: a loop
    that trains on fewer days than configured would drift in quality
    without any signal. Configure the store with ``retained_slots``
    deep enough for ``train_days`` plus the holdback span.
    """


def window_bounds(
    store, *, train_days: int, holdback_slots: int = 0
) -> tuple[int, int]:
    """Day-aligned ``[start_slot, end_slot)`` for a training extraction.

    ``end_slot`` is the last day boundary at or below
    ``frontier - holdback_slots`` — the held-back span between the
    training window and the frontier is what the shadow evaluation
    scores on. Raises :class:`InsufficientHistoryError` when the store's
    retained (finalized) history cannot cover ``train_days`` whole days.
    """
    if train_days < 1:
        raise ValueError(f"train_days must be >= 1, got {train_days}")
    if holdback_slots < 0:
        raise ValueError(f"holdback_slots must be >= 0, got {holdback_slots}")
    spd = store.config.slots_per_day
    end = ((store.frontier - holdback_slots) // spd) * spd
    start = end - train_days * spd
    oldest = store.oldest_retained
    if start < 0 or start < oldest:
        raise InsufficientHistoryError(
            f"training window needs slots [{start}, {end}) but the store "
            f"retains [{oldest}, {store.frontier}); deepen retained_slots "
            f"or stream more history before extracting"
        )
    return start, end


def extract_training_dataset(
    store,
    registry: StationRegistry,
    *,
    train_days: int,
    holdback_slots: int = 0,
    demand_normalizer: MinMaxNormalizer | None = None,
    supply_normalizer: MinMaxNormalizer | None = None,
    flow_scale: float | None = None,
    train_fraction: float = 0.7,
    val_fraction: float = 0.1,
    name: str = "continual",
) -> tuple[BikeShareDataset, int]:
    """Extract a training dataset from live store history.

    Returns ``(dataset, start_slot)`` where ``start_slot`` is the
    absolute store slot of the dataset's row 0 — dataset-relative
    prediction times ``t`` map back to store slots as ``start_slot + t``.

    When the deployment's normalizers are given, they are pinned on the
    dataset (see :meth:`BikeShareDataset.use_normalizers`); otherwise
    the dataset fits its own on the extracted train split — fine for a
    cold start, wrong for an incremental cycle.
    """
    start, end = window_bounds(
        store, train_days=train_days, holdback_slots=holdback_slots
    )
    first, inflow, outflow = store.history_window(slots=end - start, end=end)
    assert first == start
    config = FlowDataConfig(
        slot_seconds=store.config.slot_seconds,
        short_window=store.config.short_window,
        long_days=store.config.long_days,
        train_fraction=train_fraction,
        val_fraction=val_fraction,
    )
    dataset = BikeShareDataset(registry, inflow, outflow, config, name=name)
    if demand_normalizer is not None or supply_normalizer is not None:
        if demand_normalizer is None or supply_normalizer is None:
            raise ValueError(
                "pin both demand and supply normalizers, or neither"
            )
        if flow_scale is None:
            raise ValueError("pinned normalizers require an explicit flow_scale")
        dataset.use_normalizers(demand_normalizer, supply_normalizer, flow_scale)
    return dataset, start


def holdback_samples(store, holdback_slots: int) -> list[FlowSample]:
    """Model-ready samples for the newest ``holdback_slots`` finalized slots.

    Each returned :class:`FlowSample` carries the *absolute* store slot
    in ``t``; its windows and targets come from one
    ``history_window()`` read, so they share the store's bitwise
    equivalence with the batch tensors. Raises
    :class:`InsufficientHistoryError` when the retained history cannot
    back the deepest sample's windows.
    """
    if holdback_slots < 1:
        raise ValueError(f"holdback_slots must be >= 1, got {holdback_slots}")
    cfg = store.config
    k = cfg.short_window
    spd = cfg.slots_per_day
    depth = cfg.horizon + holdback_slots
    end = store.frontier
    if end - depth < 0 or end - depth < store.oldest_retained:
        raise InsufficientHistoryError(
            f"holdback evaluation needs slots [{end - depth}, {end}) but the "
            f"store retains [{store.oldest_retained}, {end})"
        )
    first, inflow, outflow = store.history_window(slots=depth, end=end)
    demand = outflow.sum(axis=2)
    supply = inflow.sum(axis=2)
    samples = []
    for t in range(end - holdback_slots, end):
        i = t - first
        long_rows = np.arange(i - cfg.long_days * spd, i, spd)
        samples.append(
            FlowSample(
                t=t,
                short_inflow=inflow[i - k : i],
                short_outflow=outflow[i - k : i],
                long_inflow=inflow[long_rows],
                long_outflow=outflow[long_rows],
                target_demand=demand[i],
                target_supply=supply[i],
            )
        )
    return samples

"""Dispatch planning from demand/supply forecasts.

Given per-station predicted *net outflow* over an upcoming window
(demand − supply, positive = the station will bleed bikes), the planner
matches surplus stations to deficit stations with a greedy
nearest-source rule: each deficit station, most-starved first, pulls
bikes from the closest stations that have surplus. Greedy
nearest-source is the standard field heuristic — trucks serve the worst
shortage from the nearest pickup — and is within a small factor of the
optimal transport cost at city scales (tens of stations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import BikeShareDataset
from repro.eval.evaluation import Predictor


@dataclass(frozen=True, slots=True)
class RebalanceMove:
    """Move ``bikes`` from ``source`` to ``destination`` (ids)."""

    source: int
    destination: int
    bikes: int
    distance_km: float


@dataclass(frozen=True, slots=True)
class RebalancePlan:
    """A set of moves plus the residual unmet shortage."""

    moves: tuple[RebalanceMove, ...]
    unmet_shortage: float  # bikes no surplus could cover
    total_bikes_moved: int
    total_bike_km: float

    def __str__(self) -> str:
        return (
            f"RebalancePlan({len(self.moves)} moves, "
            f"{self.total_bikes_moved} bikes, {self.total_bike_km:.1f} bike-km, "
            f"unmet={self.unmet_shortage:.1f})"
        )


def forecast_shortages(
    predictor: Predictor, dataset: BikeShareDataset, times: np.ndarray
) -> np.ndarray:
    """Predicted net outflow per station over ``times`` (sum of slots).

    Positive entries forecast a shortage (more checkouts than returns);
    negative entries forecast accumulation.
    """
    times = np.asarray(times)
    if times.size == 0:
        raise ValueError("need at least one forecast slot")
    net = np.zeros(dataset.num_stations)
    for t in times:
        demand, supply = predictor.predict(int(t))
        net += np.asarray(demand) - np.asarray(supply)
    return net


def plan_rebalancing(
    net_outflow: np.ndarray,
    distances_km: np.ndarray,
    min_move: int = 1,
    capacity_per_move: int | None = None,
) -> RebalancePlan:
    """Match predicted surpluses to deficits, nearest source first.

    Parameters
    ----------
    net_outflow:
        Per-station predicted net outflow; positive = needs bikes.
    distances_km:
        Pairwise station distances, ``(n, n)``.
    min_move:
        Smallest worthwhile transfer (fractional predictions below this
        are left unserved rather than dispatching a truck for half a
        bike).
    capacity_per_move:
        Optional cap on bikes per (source, destination) transfer; larger
        requirements split into several moves.
    """
    net_outflow = np.asarray(net_outflow, dtype=np.float64)
    distances_km = np.asarray(distances_km, dtype=np.float64)
    n = len(net_outflow)
    if distances_km.shape != (n, n):
        raise ValueError(
            f"distance matrix {distances_km.shape} does not match {n} stations"
        )
    if min_move < 1:
        raise ValueError(f"min_move must be >= 1, got {min_move}")

    deficits = {i: float(net_outflow[i]) for i in range(n) if net_outflow[i] >= min_move}
    surpluses = {
        i: float(-net_outflow[i]) for i in range(n) if -net_outflow[i] >= min_move
    }

    moves: list[RebalanceMove] = []
    # Serve the worst shortages first.
    for station in sorted(deficits, key=deficits.get, reverse=True):
        need = deficits[station]
        # Pull from nearest surplus stations until satisfied.
        for source in sorted(surpluses, key=lambda s: distances_km[station, s]):
            if need < min_move:
                break
            # A capped transfer may need several trips from one source.
            while need >= min_move and surpluses.get(source, 0.0) >= min_move:
                available = surpluses[source]
                bikes = int(min(need, available))
                if capacity_per_move is not None:
                    bikes = min(bikes, capacity_per_move)
                if bikes < min_move:
                    break
                moves.append(
                    RebalanceMove(
                        source=source,
                        destination=station,
                        bikes=bikes,
                        distance_km=float(distances_km[station, source]),
                    )
                )
                surpluses[source] = available - bikes
                need -= bikes
        deficits[station] = need

    unmet = sum(v for v in deficits.values() if v > 0)
    total_bikes = sum(m.bikes for m in moves)
    total_km = sum(m.bikes * m.distance_km for m in moves)
    return RebalancePlan(
        moves=tuple(moves),
        unmet_shortage=float(unmet),
        total_bikes_moved=total_bikes,
        total_bike_km=float(total_km),
    )

"""Bike rebalancing on top of demand/supply predictions.

The paper's motivation: "bikes can be dispatched in advance to meet the
demand and supply". This subpackage turns a prediction horizon into a
dispatch plan — which stations to take bikes from, which to deliver to,
and in what quantities — with transport cost weighted by inter-station
distance.
"""

from repro.rebalance.planner import (
    RebalanceMove,
    RebalancePlan,
    forecast_shortages,
    plan_rebalancing,
)

__all__ = [
    "RebalanceMove",
    "RebalancePlan",
    "forecast_shortages",
    "plan_rebalancing",
]

"""Reverse-mode automatic differentiation on numpy arrays.

This subpackage is the deep-learning substrate of the reproduction: the
paper trains its models with PyTorch, which is unavailable offline, so we
implement a compatible tensor engine from scratch. ``Tensor`` wraps a
``numpy.ndarray`` and records the operations applied to it; calling
:meth:`Tensor.backward` walks the recorded graph in reverse topological
order and accumulates gradients, exactly as a framework autograd would.

The engine supports full numpy broadcasting. Gradients flowing back
through a broadcast are reduced with :func:`repro.tensor.ops.unbroadcast`
so that every parameter receives a gradient of its own shape.
"""

from repro.tensor.tensor import Tensor, inference_mode, is_grad_enabled, no_grad
from repro.tensor import ops
from repro.tensor.ops import (
    concat,
    stack,
    where,
    maximum,
    minimum,
    masked_softmax,
    linear,
    conv1x1,
    row_softmax,
    pairwise_scores,
    gated_fusion,
)

__all__ = [
    "Tensor",
    "no_grad",
    "inference_mode",
    "is_grad_enabled",
    "ops",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "masked_softmax",
    "linear",
    "conv1x1",
    "row_softmax",
    "pairwise_scores",
    "gated_fusion",
]

"""The ``Tensor`` class: a numpy array with reverse-mode autodiff.

Every differentiable operation returns a new ``Tensor`` holding a
``_backward`` closure and references to its parent tensors. Calling
:meth:`Tensor.backward` on a scalar result topologically sorts the graph
and invokes the closures in reverse order, accumulating ``.grad`` on
every tensor created with ``requires_grad=True``.

Grad modes
----------
Two context managers disable graph recording. Ops check the flag *before*
building their backward closure, so a disabled graph costs no closure or
parent-tuple allocation — the forward is a plain numpy expression plus
one lightweight ``Tensor`` wrapper:

* :func:`no_grad` — disables recording (the torch semantics);
* :func:`inference_mode` — same, plus an optional dtype for the scope
  (``inference_mode(dtype="float32")`` runs the whole forward in single
  precision), signalling a pure serving path.

Dtype policy lives in :mod:`repro.backend`: tensors are allocated with
the backend's default dtype (``float64`` unless scoped otherwise) and
raw python scalars/sequences entering an op are coerced to the dtype of
the tensor they combine with — never silently upcast to ``float64``.
"""

from __future__ import annotations

import contextlib
import itertools
import operator
from typing import Callable, Iterator, Sequence

import numpy as np

from repro import backend

# Global switch mirroring torch.no_grad(): when False, no graph is recorded.
_GRAD_ENABLED = True

# Monotone creation-sequence counter. Every op output is created *after*
# its parents, so descending creation order is a topological order of any
# recorded graph — ``backward`` sorts reachable nodes by this key instead
# of running a post-order DFS per call. The tape order is, in effect, a
# topological order cached at graph-construction time: rebuilding the
# same-shaped graph for the next training sample pays only the counter
# increment, never a re-derivation of the ordering.
_SEQ_COUNTER = itertools.count(1)
_SEQ_KEY = operator.attrgetter("_seq")


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph recording (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


@contextlib.contextmanager
def inference_mode(dtype: "str | np.dtype | type | None" = None) -> Iterator[None]:
    """Forward-only fast path: no graph recording, optional dtype scope.

    ``with inference_mode():`` is :func:`no_grad` by another, more
    explicit name. ``with inference_mode(dtype="float32"):`` additionally
    makes every tensor created inside the block single precision, which
    halves memory traffic on the serving hot path. Model parameters are
    not touched — cast them once with ``module.to(np.float32)`` to keep
    the whole forward in ``float32``.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        if dtype is None:
            yield
        else:
            with backend.dtype_scope(dtype):
                yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(
    value: "Tensor | np.ndarray | float | int | Sequence",
    dtype: "str | np.dtype | type | None" = None,
) -> np.ndarray:
    """Coerce ``value`` to an array of ``dtype`` (default: backend dtype).

    This is the single coercion point for raw operands: python ints,
    floats and sequences acquire the requested dtype here instead of
    being silently upcast to ``float64``.
    """
    if isinstance(value, Tensor):
        return value.data
    return backend.asarray(value, dtype)


class Tensor:
    """A numpy-backed tensor that tracks gradients.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts. Stored with the backend's
        default dtype (``float64`` unless a dtype scope is active) for
        gradient-check accuracy; pass ``dtype`` to override.
    requires_grad:
        If True, ``backward`` accumulates this tensor's gradient into
        ``self.grad``.
    dtype:
        Explicit dtype for this tensor, bypassing the backend default.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "name",
        "_seq",
        "_grad_buffer",
    )

    def __init__(
        self,
        data: "np.ndarray | float | int | Sequence",
        requires_grad: bool = False,
        name: str | None = None,
        dtype: "str | np.dtype | type | None" = None,
    ) -> None:
        self.data = backend.asarray(data, dtype)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name
        self._seq = next(_SEQ_COUNTER)
        self._grad_buffer: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        from repro.tensor import ops

        return ops.transpose(self)

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_item()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor._from_data(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _from_data(data: np.ndarray) -> "Tensor":
        """Wrap an op result without dtype coercion or graph wiring.

        The forward-only fast path and all op results come through here:
        ``data`` keeps whatever dtype the numpy expression produced, so a
        ``float32`` graph stays ``float32`` end to end.
        """
        out = object.__new__(Tensor)
        out.data = data if isinstance(data, np.ndarray) else np.asarray(data)
        out.requires_grad = False
        out.grad = None
        out._backward = None
        out._parents = ()
        out.name = None
        out._seq = 0
        out._grad_buffer = None
        return out

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op result wired into the graph (if grad is enabled)."""
        out = Tensor._from_data(data)
        if _GRAD_ENABLED:
            for p in parents:
                if p.requires_grad:
                    out.requires_grad = True
                    out._parents = parents
                    out._backward = backward
                    out._seq = next(_SEQ_COUNTER)
                    break
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad``.

        The first accumulation after :meth:`zero_grad` writes into a
        persistent per-tensor buffer instead of allocating
        ``zeros_like`` + ``+=`` — for model parameters this makes the
        training loop's leaf-gradient accumulation allocation-free after
        the first step. The buffer is reused across steps, so ``.grad``
        is only stable until the next backward pass (copy it to keep it).
        """
        if self.grad is None:
            buffer = self._grad_buffer
            if (
                buffer is None
                or buffer.shape != self.data.shape
                or buffer.dtype != self.data.dtype
            ):
                buffer = np.empty_like(self.data)
                self._grad_buffer = buffer
            np.copyto(buffer, grad)
            self.grad = buffer
        else:
            self.grad += grad

    def attach_grad_buffer(self, buffer: np.ndarray) -> None:
        """Make ``buffer`` the persistent gradient-accumulation target.

        The next backward pass after :meth:`zero_grad` writes its first
        leaf contribution straight into ``buffer`` (see
        :meth:`_accumulate`), and further contributions add in place —
        so gradients accumulate directly into externally owned memory.
        The shared-memory gradient transport (``core/parallel.py``)
        attaches a worker's arena view here, making the worker's whole
        backward pass zero-copy: no gradient ever exists outside the
        arena the parent reduces from.

        ``buffer`` must match this tensor's shape and dtype exactly and
        be writable and C-contiguous — ``_accumulate`` silently replaces
        mismatched buffers with a fresh allocation, which would break
        the external aliasing contract, so mismatches are rejected here
        instead.
        """
        if buffer.shape != self.data.shape or buffer.dtype != self.data.dtype:
            raise ValueError(
                f"grad buffer mismatch: buffer is {buffer.dtype}{buffer.shape}, "
                f"tensor is {self.data.dtype}{self.data.shape}"
            )
        if not buffer.flags.writeable or not buffer.flags.c_contiguous:
            raise ValueError("grad buffer must be writable and C-contiguous")
        self.grad = None
        self._grad_buffer = buffer

    def zero_grad(self) -> None:
        """Reset the accumulated gradient (the grad buffer is retained)."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient. Defaults to 1 and is only optional for
            scalar tensors, matching the usual framework convention.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        if self._backward is None:
            # Root is itself a leaf: nothing to walk.
            self._accumulate(grad)
            return

        order = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): grad}
        # Ids whose accumulated gradient array is exclusively owned by
        # this backward pass (freshly allocated by a fan-in sum below).
        # Only owned arrays are mutated in place; closure-returned arrays
        # may alias forward data or the upstream gradient and must never
        # be written to.
        owned: set[int] = set()
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is not None:
                # Interior node: the closure pushes gradients to parents
                # through the shared dict (leaf parents accumulate into
                # .grad directly and are never enqueued here).
                node._backward_dispatch(node_grad, grads, owned)

    def _backward_dispatch(
        self, grad: np.ndarray, grads: dict[int, np.ndarray], owned: set[int]
    ) -> None:
        """Run the op's backward closure, accumulating into ``grads``.

        Fan-in accumulation allocates exactly one array per node (on the
        second contribution); further contributions are added in place
        into that owned array instead of ``grad = grad + ...`` churn.
        """
        parent_grads = self._backward(grad)  # type: ignore[misc]
        for parent, parent_grad in zip(self._parents, parent_grads):
            if parent_grad is None or not parent.requires_grad:
                continue
            if parent._backward is None:
                # Leaf: skip the ordering dict and add straight into
                # .grad (same chronological fan-in order; _accumulate
                # copies the first contribution, so aliased closure
                # arrays are never mutated).
                parent._accumulate(parent_grad)
                continue
            key = id(parent)
            existing = grads.get(key)
            if existing is None:
                grads[key] = parent_grad
            elif key in owned:
                # Re-store: scalar (0-d) sums are numpy scalars, for
                # which += rebinds instead of mutating in place.
                existing += parent_grad
                grads[key] = existing
            else:
                grads[key] = existing + parent_grad
                owned.add(key)

    # ------------------------------------------------------------------
    # Operator overloads (implemented in ops.py to keep this file lean)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from repro.tensor import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from repro.tensor import ops

        return ops.sub(self, other)

    def __rsub__(self, other):
        from repro.tensor import ops

        return ops.sub(other, self)

    def __mul__(self, other):
        from repro.tensor import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.tensor import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):
        from repro.tensor import ops

        return ops.div(other, self)

    def __neg__(self):
        from repro.tensor import ops

        return ops.neg(self)

    def __pow__(self, exponent: float):
        from repro.tensor import ops

        return ops.pow(self, exponent)

    def __matmul__(self, other):
        from repro.tensor import ops

        return ops.matmul(self, other)

    def __getitem__(self, index):
        from repro.tensor import ops

        return ops.getitem(self, index)

    # Convenience method forms -----------------------------------------
    def matmul(self, other):
        from repro.tensor import ops

        return ops.matmul(self, other)

    def sum(self, axis=None, keepdims: bool = False):
        from repro.tensor import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.tensor import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        from repro.tensor import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.tensor import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes=None):
        from repro.tensor import ops

        return ops.transpose(self, axes)

    def exp(self):
        from repro.tensor import ops

        return ops.exp(self)

    def log(self):
        from repro.tensor import ops

        return ops.log(self)

    def sqrt(self):
        from repro.tensor import ops

        return ops.sqrt(self)

    def abs(self):
        from repro.tensor import ops

        return ops.abs(self)

    def relu(self):
        from repro.tensor import ops

        return ops.relu(self)

    def elu(self, alpha: float = 1.0):
        from repro.tensor import ops

        return ops.elu(self, alpha)

    def sigmoid(self):
        from repro.tensor import ops

        return ops.sigmoid(self)

    def tanh(self):
        from repro.tensor import ops

        return ops.tanh(self)

    def softmax(self, axis: int = -1):
        from repro.tensor import ops

        return ops.softmax(self, axis=axis)

    def clip(self, low: float | None = None, high: float | None = None):
        from repro.tensor import ops

        return ops.clip(self, low, high)


def _topological_order(root: Tensor) -> list[Tensor]:
    """Return interior nodes reachable from ``root`` in reverse
    topological order.

    Single-pass iterative reachability (graphs built by K-layer GNNs over
    hundreds of time slots can exceed python's recursion limit) followed
    by a C-level sort on the creation sequence number. Ops create their
    output strictly after their parents, so descending ``_seq`` is a
    valid topological order — the post-order bookkeeping the seed's
    two-phase DFS paid per backward call is precomputed at graph
    construction. Leaves (no backward closure) are excluded: the
    dispatch loop accumulates their gradients directly, so they need
    neither ordering nor dict traffic.
    """
    nodes: list[Tensor] = [root]
    visited: set[int] = {id(root)}
    stack: list[Tensor] = [root]
    while stack:
        node = stack.pop()
        for parent in node._parents:
            if parent._backward is not None:
                key = id(parent)
                if key not in visited:
                    visited.add(key)
                    nodes.append(parent)
                    stack.append(parent)
    nodes.sort(key=_SEQ_KEY, reverse=True)
    return nodes


def _raise_item() -> float:
    raise ValueError("item() requires a single-element tensor")

"""Differentiable primitive operations for :class:`repro.tensor.Tensor`.

Each op computes its forward result with numpy and returns a tensor whose
``_backward`` closure maps the upstream gradient to per-parent gradients.
All binary ops support full numpy broadcasting; :func:`unbroadcast`
reduces gradients back to each operand's original shape.

Structure of every op::

    data = <numpy forward>
    if _no_graph(parents):            # no_grad()/inference_mode(), or no
        return Tensor._from_data(data)  # parent requires grad
    def backward(grad): ...           # closure built only when recording
    return Tensor._make(data, parents, backward)

The early return is the forward-only fast path: under ``no_grad()`` /
``inference_mode()`` no backward closure, cell variables or parent tuple
are allocated — per-op overhead drops to one numpy call plus one slotted
``Tensor``. Hot-path *fused* ops (:func:`linear`, :func:`conv1x1`,
:func:`row_softmax`, :func:`pairwise_scores`) additionally collapse
multi-op numpy pipelines into single kernels with in-place arithmetic,
and draw their output buffers from :mod:`repro.backend.pool` when a
buffer scope is active.

Every public op registers itself in :mod:`repro.backend.registry` under
its function name, giving alternative backends a dispatch seam.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend import active_pool, register
from repro.tensor import tensor as _tensor_module
from repro.tensor.tensor import Tensor


def _wrap(value, like: "Tensor | None" = None) -> Tensor:
    """Coerce ``value`` to a Tensor, matching ``like``'s dtype if given.

    The dtype match is the upcast fix: a python scalar entering a
    ``float32`` graph becomes a ``float32`` constant instead of dragging
    the whole expression to ``float64``.
    """
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=like.data.dtype if like is not None else None)


def _wrap_pair(a, b) -> tuple[Tensor, Tensor]:
    """Wrap both operands of a binary op, non-tensors adopting the
    tensor operand's dtype."""
    a_is = isinstance(a, Tensor)
    b_is = isinstance(b, Tensor)
    if a_is and b_is:
        return a, b
    if a_is:
        return a, Tensor(b, dtype=a.data.dtype)
    if b_is:
        return Tensor(a, dtype=b.data.dtype), b
    return Tensor(a), Tensor(b)


def _no_graph(*parents: Tensor) -> bool:
    """True when no backward closure is needed for these parents."""
    if not _tensor_module._GRAD_ENABLED:
        return True
    for parent in parents:
        if parent.requires_grad:
            return False
    return True


def _out_buffer(shape: tuple[int, ...], dtype) -> "np.ndarray | None":
    """A pooled output buffer, or None when no buffer scope is active."""
    pool = active_pool()
    return pool.take(shape, dtype) if pool is not None else None


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting either prepends dimensions or stretches size-1 axes; the
    correct gradient for the smaller operand sums over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over stretched size-1 axes.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
@register("add")
def add(a, b) -> Tensor:
    a, b = _wrap_pair(a, b)
    data = a.data + b.data
    if _no_graph(a, b):
        return Tensor._from_data(data)

    def backward(grad):
        return (unbroadcast(grad, a.shape), unbroadcast(grad, b.shape))

    return Tensor._make(data, (a, b), backward)


@register("sub")
def sub(a, b) -> Tensor:
    a, b = _wrap_pair(a, b)
    data = a.data - b.data
    if _no_graph(a, b):
        return Tensor._from_data(data)

    def backward(grad):
        return (unbroadcast(grad, a.shape), unbroadcast(-grad, b.shape))

    return Tensor._make(data, (a, b), backward)


@register("mul")
def mul(a, b) -> Tensor:
    a, b = _wrap_pair(a, b)
    data = a.data * b.data
    if _no_graph(a, b):
        return Tensor._from_data(data)

    def backward(grad):
        return (
            unbroadcast(grad * b.data, a.shape),
            unbroadcast(grad * a.data, b.shape),
        )

    return Tensor._make(data, (a, b), backward)


@register("div")
def div(a, b) -> Tensor:
    a, b = _wrap_pair(a, b)
    data = a.data / b.data
    if _no_graph(a, b):
        return Tensor._from_data(data)

    def backward(grad):
        return (
            unbroadcast(grad / b.data, a.shape),
            unbroadcast(-grad * a.data / (b.data**2), b.shape),
        )

    return Tensor._make(data, (a, b), backward)


@register("neg")
def neg(a) -> Tensor:
    a = _wrap(a)
    data = -a.data
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        return (-grad,)

    return Tensor._make(data, (a,), backward)


@register("pow")
def pow(a, exponent: float) -> Tensor:
    """Elementwise power with a constant (non-tensor) exponent."""
    a = _wrap(a)
    data = a.data**exponent
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1),)

    return Tensor._make(data, (a,), backward)


@register("matmul")
def matmul(a, b) -> Tensor:
    """Matrix product supporting 1-D and batched operands, as ``np.matmul``."""
    a, b = _wrap_pair(a, b)
    data = a.data @ b.data
    if _no_graph(a, b):
        return Tensor._from_data(data)

    def backward(grad):
        a_data, b_data = a.data, b.data
        if a_data.ndim == 1 and b_data.ndim == 1:
            # Inner product: grad is scalar.
            return (grad * b_data, grad * a_data)
        if a_data.ndim == 1:
            # (k,) @ (..., k, n) -> (..., n)
            grad_a = (grad[..., None, :] * b_data).sum(axis=-1)
            grad_a = unbroadcast(grad_a, a_data.shape)
            grad_b = unbroadcast(a_data[..., :, None] * grad[..., None, :], b_data.shape)
            return (grad_a, grad_b)
        if b_data.ndim == 1:
            # (..., m, k) @ (k,) -> (..., m)
            grad_a = unbroadcast(grad[..., :, None] * b_data, a_data.shape)
            grad_b = unbroadcast((grad[..., :, None] * a_data).sum(axis=-2), b_data.shape)
            return (grad_a, grad_b)
        grad_a = grad @ np.swapaxes(b_data, -1, -2)
        grad_b = np.swapaxes(a_data, -1, -2) @ grad
        return (unbroadcast(grad_a, a_data.shape), unbroadcast(grad_b, b_data.shape))

    return Tensor._make(data, (a, b), backward)


# ----------------------------------------------------------------------
# Fused hot-path kernels
# ----------------------------------------------------------------------
@register("linear")
def linear(x, weight, bias=None) -> Tensor:
    """Fused affine map ``x @ W (+ b)`` — one kernel instead of two ops.

    The hot path of every ``Linear`` layer (and the value/self/mix
    projections of the attention stacks). Fusing the bias add into the
    fresh matmul result saves one full-size temporary and one graph node
    per call; under an active buffer scope the output is written straight
    into a pooled scratch array (``np.matmul(..., out=)``).
    """
    x = _wrap(x)
    weight = _wrap(weight)
    bias = _wrap(bias) if bias is not None else None
    x_data, w_data = x.data, weight.data

    parents = (x, weight) if bias is None else (x, weight, bias)
    if _no_graph(*parents):
        out = None
        if x_data.ndim >= 2 and w_data.ndim == 2 and x_data.dtype == w_data.dtype:
            buffer = _out_buffer(x_data.shape[:-1] + (w_data.shape[-1],), x_data.dtype)
            if buffer is not None:
                out = np.matmul(x_data, w_data, out=buffer)
        if out is None:
            out = x_data @ w_data
        if bias is not None:
            # In-place is safe: `out` is this op's own fresh/pooled array.
            if np.can_cast(bias.data.dtype, out.dtype, casting="same_kind"):
                out += bias.data
            else:
                out = out + bias.data
        return Tensor._from_data(out)

    data = x_data @ w_data
    if bias is not None:
        data = data + bias.data

    need_x = x.requires_grad

    def backward(grad):
        grad_x = None
        if need_x:
            grad_x = unbroadcast(grad @ np.swapaxes(w_data, -1, -2), x_data.shape)
        if x_data.ndim == 1:
            grad_w = np.outer(x_data, grad)
        else:
            grad_w = unbroadcast(np.swapaxes(x_data, -1, -2) @ grad, w_data.shape)
        if bias is None:
            return (grad_x, grad_w)
        return (grad_x, grad_w, unbroadcast(grad, bias.data.shape))

    return Tensor._make(data, parents, backward)


@register("conv1x1")
def conv1x1(x, weight, bias, relu: bool = False) -> Tensor:
    """Fused 1x1 channel convolution ``sum_c W[c] * x[c] + b``.

    The flow-convolution kernel (Eqs. 1-4): ``x`` is ``(c, *field)``,
    ``weight`` is ``(c,)`` and ``bias`` has the field shape. One
    ``tensordot`` contracts the channel axis — replacing the seed path's
    transpose + matmul + add (three ops, two large temporaries). With
    ``relu=True`` the activation folds into the same op (the Eqs. 1-4
    pattern), saving a full-size node + closure per call.
    """
    x, weight, bias = _wrap(x), _wrap(weight), _wrap(bias)
    x_data, w_data = x.data, weight.data
    # Channel contraction as a flat matvec: same BLAS dot as tensordot
    # without tensordot's per-call transpose/reshape machinery.
    flat_x = x_data.reshape(w_data.shape[0], -1)
    out = (w_data @ flat_x).reshape(x_data.shape[1:])
    if _no_graph(x, weight, bias):
        if np.can_cast(bias.data.dtype, out.dtype, casting="same_kind"):
            out += bias.data
        else:
            out = out + bias.data
        if relu:
            out *= out > 0
        return Tensor._from_data(out)

    data = out + bias.data
    mask = None
    if relu:
        mask = data > 0
        data = data * mask
    # The windows fed to Eqs. 1-4 are raw-data leaves: skip the
    # channel-broadcast input gradient (the largest array of the whole
    # backward pass) unless something upstream actually needs it.
    need_x = x.requires_grad

    def backward(grad):
        if mask is not None:
            grad = grad * mask
        # Weight gradient as the same flat matvec as the forward —
        # tensordot's generic transpose/reshape setup costs more than
        # the (c, field) @ (field,) BLAS call it wraps at these sizes.
        grad_w = flat_x @ grad.ravel()
        grad_x = None
        if need_x:
            grad_x = w_data.reshape((-1,) + (1,) * grad.ndim) * grad
        return (grad_x, grad_w, grad)

    return Tensor._make(data, (x, weight, bias), backward)


@register("row_softmax")
def row_softmax(a) -> Tensor:
    """Softmax over the last axis, fused shift-exp-normalise.

    The attention hot path (Eqs. 12/16 row softmax): the shifted logits
    are exponentiated and normalised in place, so the whole op
    materialises a single full-size array (pooled under a buffer scope)
    instead of three.
    """
    a = _wrap(a)
    a_data = a.data
    buffer = _out_buffer(a_data.shape, a_data.dtype) if _no_graph(a) else None
    if buffer is not None:
        shifted = np.subtract(a_data, a_data.max(axis=-1, keepdims=True), out=buffer)
    else:
        shifted = a_data - a_data.max(axis=-1, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=-1, keepdims=True)
    data = shifted
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        inner = (grad * data).sum(axis=-1, keepdims=True)
        return (data * (grad - inner),)

    return Tensor._make(data, (a,), backward)


@register("pairwise_scores")
def pairwise_scores(projected, attn_src, attn_dst, alpha: float = 1.0) -> Tensor:
    """Fused additive-attention score kernel ``ELU(P a_src + (P a_dst)^T)``.

    Computes the full ``(n, n)`` pre-softmax coefficient matrix of
    Eqs. 11/15 in one op: two thin ``(n, f) @ (f, 1)`` projections, one
    broadcast outer add, and the ELU applied in place — replacing five
    recorded ops (two matmuls, transpose, add, elu) and their closures.
    The forward math matches the unfused path term for term, so float64
    results are bitwise identical.
    """
    projected, attn_src, attn_dst = _wrap(projected), _wrap(attn_src), _wrap(attn_dst)
    p_data = projected.data
    src = p_data @ attn_src.data  # (n, 1)
    dst = p_data @ attn_dst.data  # (n, 1)
    pre = src + dst.T  # (n, n) broadcast outer sum
    positive = pre > 0
    # Same expression as ops.elu, reusing `pre` for the negative branch.
    data = np.where(positive, pre, alpha * (np.exp(np.minimum(pre, 0.0)) - 1.0))
    if _no_graph(projected, attn_src, attn_dst):
        return Tensor._from_data(data)

    def backward(grad):
        grad_pre = grad * np.where(positive, 1.0, data + alpha)
        grad_src = grad_pre.sum(axis=1, keepdims=True)  # (n, 1)
        grad_dst = grad_pre.sum(axis=0)[:, None]  # (n, 1)
        grad_projected = grad_src @ attn_src.data.T + grad_dst @ attn_dst.data.T
        return (
            grad_projected,
            p_data.T @ grad_src,
            p_data.T @ grad_dst,
        )

    return Tensor._make(data, (projected, attn_src, attn_dst), backward)


@register("gated_fusion")
def gated_fusion(short, long, gate) -> Tensor:
    """Fused attentive short/long blend (Eqs. 5-8), elementwise.

    ``out = beta * short + (1 - beta) * long`` with
    ``beta = sigmoid(gate * short - gate * long)`` — the two-way softmax
    over {short, long} scores written as a sigmoid of the score
    difference, immune to overflow. One op replaces the eight recorded
    elementwise ops (and closures) of the unfused expression; the
    forward uses the same stable-sigmoid expressions as :func:`sigmoid`,
    so float64 results are bitwise identical to the unfused path.
    """
    short, long, gate = _wrap(short), _wrap(long), _wrap(gate)
    s_data, l_data, g_data = short.data, long.data, gate.data
    diff = g_data * s_data - g_data * l_data
    positive = diff >= 0
    exp_neg = np.exp(np.where(positive, -diff, diff))
    beta = np.where(positive, 1.0 / (1.0 + exp_neg), exp_neg / (1.0 + exp_neg))
    data = beta * s_data + (1.0 - beta) * l_data
    if _no_graph(short, long, gate):
        return Tensor._from_data(data)

    def backward(grad):
        # d(out)/d(diff) = beta * (1 - beta) * (short - long); diff is
        # gate-weighted, so the chain rule scales by gate (for short and
        # long) or by (short - long) (for the gate itself).
        delta = s_data - l_data
        u = beta * (1.0 - beta) * delta
        gate_u = g_data * u
        grad_short = grad * (beta + gate_u)
        grad_long = grad * (1.0 - beta - gate_u)
        grad_gate = grad * (u * delta)
        return (
            unbroadcast(grad_short, s_data.shape),
            unbroadcast(grad_long, l_data.shape),
            unbroadcast(grad_gate, g_data.shape),
        )

    return Tensor._make(data, (short, long, gate), backward)


@register("joint_rmse")
def joint_rmse(demand_pred, demand_true, supply_pred, supply_true,
               eps: float = 1e-12) -> Tensor:
    """Fused joint demand-supply RMSE (Eq. 21), the training loss.

    ``sqrt(mean((x - x_hat)^2) + mean((y - y_hat)^2) + eps)`` as one
    recorded op — the unfused expression records nine (two subs, two
    squares, two means, two adds, a sqrt), all on station-sized arrays
    where per-op overhead dwarfs the arithmetic. Forward expressions
    match the unfused path term for term.
    """
    demand_pred, demand_true = _wrap_pair(demand_pred, demand_true)
    supply_pred, supply_true = _wrap_pair(supply_pred, supply_true)
    demand_diff = demand_pred.data - demand_true.data
    supply_diff = supply_pred.data - supply_true.data
    value = np.sqrt(
        np.mean(demand_diff**2) + np.mean(supply_diff**2) + eps
    )
    parents = (demand_pred, demand_true, supply_pred, supply_true)
    if _no_graph(*parents):
        return Tensor._from_data(value)
    need_demand_true = demand_true.requires_grad
    need_supply_true = supply_true.requires_grad

    def backward(grad):
        # d/d(pred) sqrt(mean(diff^2) + ...) = diff / (N * L).
        scale = grad / value
        grad_demand = (scale / demand_diff.size) * demand_diff
        grad_supply = (scale / supply_diff.size) * supply_diff
        return (
            grad_demand,
            -grad_demand if need_demand_true else None,
            grad_supply,
            -grad_supply if need_supply_true else None,
        )

    return Tensor._make(np.asarray(value), parents, backward)


@register("edge_aggregate")
def edge_aggregate(
    weights,
    values,
    indices: np.ndarray,
    block_rows: int = 256,
    full_coverage: bool = False,
) -> Tensor:
    """Cache-blocked gather/scatter neighborhood aggregation.

    ``out[i] = sum_j weights[i, j] * values[indices[i, j]]`` — the sparse
    twin of the dense ``weights @ values`` pooling (FCG Eq. 14, PCG
    Eq. 17) over top-k edge lists. ``weights`` is ``(n, k)``; ``values``
    is ``(m, f)``; ``indices`` selects the ``k`` source rows per node and
    is structural (never differentiated through). Two layouts:

    * ``indices`` 1-D ``(k,)`` — all rows share one column set (the PCG
      case: additive-attention scores are monotone in the destination
      term, so every row's top-k columns coincide). One ``(k, f)`` gather
      and a single dense gemm.
    * ``indices`` 2-D ``(n, k)`` — per-row neighborhoods (the FCG case).
      Rows are processed in blocks of ``block_rows``: each block gathers
      its ``(B, k, f)`` neighbor slab and contracts it with a batched
      matmul, bounding transient memory to one slab instead of ``n``.

    With ``full_coverage=True`` (``k == m`` and every row keeps all
    columns ascending) the gather is the identity and the whole op is the
    single dense gemm ``weights @ values`` — bitwise identical to the
    dense path, which is what the parity/golden tests pin. The backward
    re-gathers per block (recompute beats holding ``(n, k, f)`` alive)
    and scatters the value gradient with ``np.add.at``.
    """
    weights, values = _wrap(weights), _wrap(values)
    w_data, v_data = weights.data, values.data
    indices = np.asarray(indices)
    n, k = w_data.shape
    feat = v_data.shape[-1]
    out_dtype = np.result_type(w_data.dtype, v_data.dtype)
    shared_columns = indices.ndim == 1
    # NB: builtins.max is shadowed by the max op in this module.
    block = int(block_rows) if int(block_rows) >= 1 else 1
    no_graph = _no_graph(weights, values)

    if full_coverage:
        out = None
        if no_graph and w_data.dtype == v_data.dtype:
            buffer = _out_buffer((n, feat), out_dtype)
            if buffer is not None:
                out = np.matmul(w_data, v_data, out=buffer)
        data = out if out is not None else w_data @ v_data
    elif shared_columns:
        data = w_data @ v_data[indices]
    else:
        data = np.empty((n, feat), dtype=out_dtype)
        for start in range(0, n, block):
            stop = min(start + block, n)
            gathered = v_data[indices[start:stop]]  # (B, k, f)
            data[start:stop] = np.matmul(
                w_data[start:stop, None, :], gathered
            )[:, 0, :]
    if no_graph:
        return Tensor._from_data(data)

    need_w = weights.requires_grad
    need_v = values.requires_grad

    def backward(grad):
        grad_w = None
        grad_v = None
        if full_coverage:
            if need_w:
                grad_w = grad @ v_data.T
            if need_v:
                grad_v = w_data.T @ grad
        elif shared_columns:
            gathered = v_data[indices]  # (k, f)
            if need_w:
                grad_w = grad @ gathered.T
            if need_v:
                grad_v = np.zeros_like(v_data)
                np.add.at(grad_v, indices, w_data.T @ grad)
        else:
            grad_w = np.empty_like(w_data) if need_w else None
            grad_v = np.zeros_like(v_data) if need_v else None
            for start in range(0, n, block):
                stop = min(start + block, n)
                idx = indices[start:stop]
                if need_w:
                    gathered = v_data[idx]  # (B, k, f)
                    grad_w[start:stop] = np.matmul(
                        gathered, grad[start:stop, :, None]
                    )[:, :, 0]
                if need_v:
                    contrib = w_data[start:stop, :, None] * grad[start:stop, None, :]
                    np.add.at(grad_v, idx, contrib)
        return (grad_w, grad_v)

    return Tensor._make(data, (weights, values), backward)


@register("sdp_attention")
def sdp_attention(query, key, value, block_rows: int = 0) -> Tensor:
    """Fused scaled-dot-product attention ``softmax(Q K^T) V``, row-blocked.

    ``query`` arrives pre-scaled (the 1/sqrt(d) factor folds into the
    thin ``(n, d)`` operand, see ``ScaledDotProductAttention``). With
    ``block_rows <= 0`` (or ``>= n``) the forward is a single full pass
    whose expressions mirror ``row_softmax(q @ k.T) @ v`` term for term
    — float64 results are bitwise identical to that unfused chain. A
    positive ``block_rows`` processes query rows in blocks on the
    forward-only path, so peak transient memory is ``block_rows x n``
    score rows instead of the full ``n x n`` matrix.
    """
    query, key, value = _wrap(query), _wrap(key), _wrap(value)
    q_data, k_data, v_data = query.data, key.data, value.data
    n = q_data.shape[0]
    no_graph = _no_graph(query, key, value)

    if no_graph and 0 < block_rows < n:
        out_dtype = np.result_type(q_data.dtype, k_data.dtype, v_data.dtype)
        out = np.empty((n, v_data.shape[-1]), dtype=out_dtype)
        for start in range(0, n, block_rows):
            stop = min(start + block_rows, n)
            scores = q_data[start:stop] @ k_data.T  # (B, n)
            scores -= scores.max(axis=-1, keepdims=True)
            np.exp(scores, out=scores)
            scores /= scores.sum(axis=-1, keepdims=True)
            out[start:stop] = scores @ v_data
        return Tensor._from_data(out)

    scores = q_data @ k_data.T
    attn = scores - scores.max(axis=-1, keepdims=True)
    np.exp(attn, out=attn)
    attn /= attn.sum(axis=-1, keepdims=True)
    data = attn @ v_data
    if no_graph:
        return Tensor._from_data(data)

    def backward(grad):
        # Same expressions as the unfused matmul/row_softmax closures.
        grad_attn = grad @ v_data.T
        grad_v = attn.T @ grad
        inner = (grad_attn * attn).sum(axis=-1, keepdims=True)
        grad_scores = attn * (grad_attn - inner)
        grad_q = grad_scores @ k_data
        grad_k = grad_scores.T @ q_data
        return (grad_q, grad_k, grad_v)

    return Tensor._make(data, (query, key, value), backward)


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
@register("reshape")
def reshape(a, shape: tuple[int, ...]) -> Tensor:
    a = _wrap(a)
    data = a.data.reshape(shape)
    if _no_graph(a):
        return Tensor._from_data(data)
    original = a.data.shape

    def backward(grad):
        return (grad.reshape(original),)

    return Tensor._make(data, (a,), backward)


@register("transpose")
def transpose(a, axes: Sequence[int] | None = None) -> Tensor:
    a = _wrap(a)
    data = np.transpose(a.data, axes)
    if _no_graph(a):
        return Tensor._from_data(data)
    inverse = None if axes is None else np.argsort(axes)

    def backward(grad):
        return (np.transpose(grad, inverse),)

    return Tensor._make(data, (a,), backward)


@register("getitem")
def getitem(a, index) -> Tensor:
    """Slicing/indexing. Backward scatters the gradient into a zero array.

    ``np.add.at`` is used so repeated indices (fancy indexing) accumulate
    correctly instead of overwriting.
    """
    a = _wrap(a)
    data = a.data[index]
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        return (full,)

    return Tensor._make(data, (a,), backward)


@register("concat")
def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [_wrap(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    if _no_graph(*tensors):
        return Tensor._from_data(data)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        pieces = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            pieces.append(grad[tuple(slicer)])
        return tuple(pieces)

    return Tensor._make(data, tuple(tensors), backward)


@register("stack")
def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [_wrap(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    if _no_graph(*tensors):
        return Tensor._from_data(data)

    def backward(grad):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(data, tuple(tensors), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
@register("sum")
def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    a = _wrap(a)
    data = a.data.sum(axis=axis, keepdims=keepdims)
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        if axis is None:
            return (np.broadcast_to(grad, a.shape).copy(),)
        g = grad
        if not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, a.shape).copy(),)

    return Tensor._make(data, (a,), backward)


@register("mean")
def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = _wrap(a)
    data = a.data.mean(axis=axis, keepdims=keepdims)
    if _no_graph(a):
        return Tensor._from_data(data)
    count = a.data.size if axis is None else np.prod(
        [a.data.shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))]
    )

    def backward(grad):
        if axis is None:
            return (np.broadcast_to(grad / count, a.shape).copy(),)
        g = grad
        if not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g / count, a.shape).copy(),)

    return Tensor._make(data, (a,), backward)


@register("max")
def max(a, axis=None, keepdims: bool = False) -> Tensor:
    """Max reduction. Ties split the gradient equally among the maxima."""
    a = _wrap(a)
    data = a.data.max(axis=axis, keepdims=keepdims)
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        expanded = data if axis is None or keepdims else np.expand_dims(data, axis=axis)
        mask = (a.data == expanded).astype(a.data.dtype)
        mask /= mask.sum(axis=axis, keepdims=True)
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (mask * g,)

    return Tensor._make(data, (a,), backward)


# ----------------------------------------------------------------------
# Elementwise nonlinearities
# ----------------------------------------------------------------------
@register("exp")
def exp(a) -> Tensor:
    a = _wrap(a)
    data = np.exp(a.data)
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        return (grad * data,)

    return Tensor._make(data, (a,), backward)


@register("log")
def log(a) -> Tensor:
    a = _wrap(a)
    data = np.log(a.data)
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        return (grad / a.data,)

    return Tensor._make(data, (a,), backward)


@register("sqrt")
def sqrt(a) -> Tensor:
    a = _wrap(a)
    data = np.sqrt(a.data)
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        return (grad / (2.0 * data),)

    return Tensor._make(data, (a,), backward)


@register("abs")
def abs(a) -> Tensor:
    a = _wrap(a)
    data = np.abs(a.data)
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        return (grad * np.sign(a.data),)

    return Tensor._make(data, (a,), backward)


@register("clip")
def clip(a, low: float | None = None, high: float | None = None) -> Tensor:
    """Clamp values; gradient is passed through only inside the range."""
    a = _wrap(a)
    data = np.clip(a.data, low, high)
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        mask = np.ones_like(a.data)
        if low is not None:
            mask *= a.data >= low
        if high is not None:
            mask *= a.data <= high
        return (grad * mask,)

    return Tensor._make(data, (a,), backward)


@register("relu")
def relu(a) -> Tensor:
    a = _wrap(a)
    mask = a.data > 0
    data = a.data * mask
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        return (grad * mask,)

    return Tensor._make(data, (a,), backward)


@register("elu")
def elu(a, alpha: float = 1.0) -> Tensor:
    """ELU, the PCG attention activation (sigma_2 in the paper, Eq. 11)."""
    a = _wrap(a)
    positive = a.data > 0
    data = np.where(positive, a.data, alpha * (np.exp(np.minimum(a.data, 0.0)) - 1.0))
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        return (grad * np.where(positive, 1.0, data + alpha),)

    return Tensor._make(data, (a,), backward)


@register("sigmoid")
def sigmoid(a) -> Tensor:
    """Numerically stable logistic: exponentials only of non-positives."""
    a = _wrap(a)
    positive = a.data >= 0
    exp_neg = np.exp(np.where(positive, -a.data, a.data))  # always <= 1
    data = np.where(positive, 1.0 / (1.0 + exp_neg), exp_neg / (1.0 + exp_neg))
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        return (grad * data * (1.0 - data),)

    return Tensor._make(data, (a,), backward)


@register("tanh")
def tanh(a) -> Tensor:
    a = _wrap(a)
    data = np.tanh(a.data)
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        return (grad * (1.0 - data**2),)

    return Tensor._make(data, (a,), backward)


@register("softmax")
def softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    The last-axis case — every attention row softmax — dispatches to the
    fused :func:`row_softmax` kernel.
    """
    a = _wrap(a)
    if axis == -1 or axis == a.data.ndim - 1:
        return row_softmax(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exped = np.exp(shifted)
    data = exped / exped.sum(axis=axis, keepdims=True)
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        inner = (grad * data).sum(axis=axis, keepdims=True)
        return (data * (grad - inner),)

    return Tensor._make(data, (a,), backward)


@register("masked_softmax")
def masked_softmax(a, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax restricted to positions where ``mask`` is truthy.

    Masked positions get probability exactly 0 and receive no gradient.
    Rows with an all-false mask produce an all-zero row (not NaN) so that
    isolated graph nodes are handled gracefully.
    """
    a = _wrap(a)
    mask = np.asarray(mask, dtype=bool)
    big_negative = -1e30  # finite stand-in for -inf; exp underflows to 0
    logits = np.where(mask, a.data, big_negative)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exped = np.exp(shifted) * mask
    denom = exped.sum(axis=axis, keepdims=True)
    safe_denom = np.where(denom > 0, denom, 1.0)
    data = exped / safe_denom
    if _no_graph(a):
        return Tensor._from_data(data)

    def backward(grad):
        inner = (grad * data).sum(axis=axis, keepdims=True)
        return (data * (grad - inner),)

    return Tensor._make(data, (a,), backward)


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
@register("where")
def where(condition: np.ndarray, a, b) -> Tensor:
    """Elementwise select; ``condition`` is a plain boolean array."""
    a, b = _wrap_pair(a, b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)
    if _no_graph(a, b):
        return Tensor._from_data(data)

    def backward(grad):
        return (
            unbroadcast(grad * condition, a.shape),
            unbroadcast(grad * ~condition, b.shape),
        )

    return Tensor._make(data, (a, b), backward)


@register("maximum")
def maximum(a, b) -> Tensor:
    """Elementwise max of two tensors; ties send gradient to the first."""
    a, b = _wrap_pair(a, b)
    data = np.maximum(a.data, b.data)
    if _no_graph(a, b):
        return Tensor._from_data(data)
    take_a = a.data >= b.data

    def backward(grad):
        return (
            unbroadcast(grad * take_a, a.shape),
            unbroadcast(grad * ~take_a, b.shape),
        )

    return Tensor._make(data, (a, b), backward)


@register("minimum")
def minimum(a, b) -> Tensor:
    """Elementwise min of two tensors; ties send gradient to the first."""
    a, b = _wrap_pair(a, b)
    data = np.minimum(a.data, b.data)
    if _no_graph(a, b):
        return Tensor._from_data(data)
    take_a = a.data <= b.data

    def backward(grad):
        return (
            unbroadcast(grad * take_a, a.shape),
            unbroadcast(grad * ~take_a, b.shape),
        )

    return Tensor._make(data, (a, b), backward)


def dropout_mask(
    shape: tuple[int, ...], rate: float, rng: np.random.Generator, dtype=None
) -> np.ndarray:
    """Inverted-dropout mask: zeros with probability ``rate``, else 1/(1-rate).

    The mask is materialised in ``dtype`` (backend default when None) so
    a ``float32`` forward is not upcast by its dropout multiply.
    """
    from repro import backend

    dtype = backend.resolve_dtype(dtype)
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if rate == 0.0:
        return np.ones(shape, dtype=dtype)
    keep = rng.random(shape) >= rate
    return (keep / (1.0 - rate)).astype(dtype, copy=False)

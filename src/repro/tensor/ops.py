"""Differentiable primitive operations for :class:`repro.tensor.Tensor`.

Each op computes its forward result with numpy and returns a tensor whose
``_backward`` closure maps the upstream gradient to per-parent gradients.
All binary ops support full numpy broadcasting; :func:`unbroadcast`
reduces gradients back to each operand's original shape.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def _wrap(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting either prepends dimensions or stretches size-1 axes; the
    correct gradient for the smaller operand sums over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over stretched size-1 axes.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def add(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    data = a.data + b.data

    def backward(grad):
        return (unbroadcast(grad, a.shape), unbroadcast(grad, b.shape))

    return Tensor._make(data, (a, b), backward)


def sub(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    data = a.data - b.data

    def backward(grad):
        return (unbroadcast(grad, a.shape), unbroadcast(-grad, b.shape))

    return Tensor._make(data, (a, b), backward)


def mul(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    data = a.data * b.data

    def backward(grad):
        return (
            unbroadcast(grad * b.data, a.shape),
            unbroadcast(grad * a.data, b.shape),
        )

    return Tensor._make(data, (a, b), backward)


def div(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    data = a.data / b.data

    def backward(grad):
        return (
            unbroadcast(grad / b.data, a.shape),
            unbroadcast(-grad * a.data / (b.data**2), b.shape),
        )

    return Tensor._make(data, (a, b), backward)


def neg(a) -> Tensor:
    a = _wrap(a)

    def backward(grad):
        return (-grad,)

    return Tensor._make(-a.data, (a,), backward)


def pow(a, exponent: float) -> Tensor:
    """Elementwise power with a constant (non-tensor) exponent."""
    a = _wrap(a)
    data = a.data**exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1),)

    return Tensor._make(data, (a,), backward)


def matmul(a, b) -> Tensor:
    """Matrix product supporting 1-D and batched operands, as ``np.matmul``."""
    a, b = _wrap(a), _wrap(b)
    data = a.data @ b.data

    def backward(grad):
        a_data, b_data = a.data, b.data
        if a_data.ndim == 1 and b_data.ndim == 1:
            # Inner product: grad is scalar.
            return (grad * b_data, grad * a_data)
        if a_data.ndim == 1:
            # (k,) @ (..., k, n) -> (..., n)
            grad_a = (grad[..., None, :] * b_data).sum(axis=-1)
            grad_a = unbroadcast(grad_a, a_data.shape)
            grad_b = unbroadcast(a_data[..., :, None] * grad[..., None, :], b_data.shape)
            return (grad_a, grad_b)
        if b_data.ndim == 1:
            # (..., m, k) @ (k,) -> (..., m)
            grad_a = unbroadcast(grad[..., :, None] * b_data, a_data.shape)
            grad_b = unbroadcast((grad[..., :, None] * a_data).sum(axis=-2), b_data.shape)
            return (grad_a, grad_b)
        grad_a = grad @ np.swapaxes(b_data, -1, -2)
        grad_b = np.swapaxes(a_data, -1, -2) @ grad
        return (unbroadcast(grad_a, a_data.shape), unbroadcast(grad_b, b_data.shape))

    return Tensor._make(data, (a, b), backward)


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
def reshape(a, shape: tuple[int, ...]) -> Tensor:
    a = _wrap(a)
    original = a.data.shape

    def backward(grad):
        return (grad.reshape(original),)

    return Tensor._make(a.data.reshape(shape), (a,), backward)


def transpose(a, axes: Sequence[int] | None = None) -> Tensor:
    a = _wrap(a)
    data = np.transpose(a.data, axes)
    inverse = None if axes is None else np.argsort(axes)

    def backward(grad):
        return (np.transpose(grad, inverse),)

    return Tensor._make(data, (a,), backward)


def getitem(a, index) -> Tensor:
    """Slicing/indexing. Backward scatters the gradient into a zero array.

    ``np.add.at`` is used so repeated indices (fancy indexing) accumulate
    correctly instead of overwriting.
    """
    a = _wrap(a)
    data = a.data[index]

    def backward(grad):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        return (full,)

    return Tensor._make(data, (a,), backward)


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [_wrap(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        pieces = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            pieces.append(grad[tuple(slicer)])
        return tuple(pieces)

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [_wrap(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(data, tuple(tensors), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    a = _wrap(a)
    data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        if axis is None:
            return (np.broadcast_to(grad, a.shape).copy(),)
        g = grad
        if not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, a.shape).copy(),)

    return Tensor._make(data, (a,), backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = _wrap(a)
    data = a.data.mean(axis=axis, keepdims=keepdims)
    count = a.data.size if axis is None else np.prod(
        [a.data.shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))]
    )

    def backward(grad):
        if axis is None:
            return (np.broadcast_to(grad / count, a.shape).copy(),)
        g = grad
        if not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g / count, a.shape).copy(),)

    return Tensor._make(data, (a,), backward)


def max(a, axis=None, keepdims: bool = False) -> Tensor:
    """Max reduction. Ties split the gradient equally among the maxima."""
    a = _wrap(a)
    data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(grad):
        expanded = data if axis is None or keepdims else np.expand_dims(data, axis=axis)
        mask = (a.data == expanded).astype(np.float64)
        mask /= mask.sum(axis=axis, keepdims=True)
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (mask * g,)

    return Tensor._make(data, (a,), backward)


# ----------------------------------------------------------------------
# Elementwise nonlinearities
# ----------------------------------------------------------------------
def exp(a) -> Tensor:
    a = _wrap(a)
    data = np.exp(a.data)

    def backward(grad):
        return (grad * data,)

    return Tensor._make(data, (a,), backward)


def log(a) -> Tensor:
    a = _wrap(a)

    def backward(grad):
        return (grad / a.data,)

    return Tensor._make(np.log(a.data), (a,), backward)


def sqrt(a) -> Tensor:
    a = _wrap(a)
    data = np.sqrt(a.data)

    def backward(grad):
        return (grad / (2.0 * data),)

    return Tensor._make(data, (a,), backward)


def abs(a) -> Tensor:
    a = _wrap(a)

    def backward(grad):
        return (grad * np.sign(a.data),)

    return Tensor._make(np.abs(a.data), (a,), backward)


def clip(a, low: float | None = None, high: float | None = None) -> Tensor:
    """Clamp values; gradient is passed through only inside the range."""
    a = _wrap(a)
    data = np.clip(a.data, low, high)

    def backward(grad):
        mask = np.ones_like(a.data)
        if low is not None:
            mask *= a.data >= low
        if high is not None:
            mask *= a.data <= high
        return (grad * mask,)

    return Tensor._make(data, (a,), backward)


def relu(a) -> Tensor:
    a = _wrap(a)
    mask = a.data > 0

    def backward(grad):
        return (grad * mask,)

    return Tensor._make(a.data * mask, (a,), backward)


def elu(a, alpha: float = 1.0) -> Tensor:
    """ELU, the PCG attention activation (sigma_2 in the paper, Eq. 11)."""
    a = _wrap(a)
    positive = a.data > 0
    data = np.where(positive, a.data, alpha * (np.exp(np.minimum(a.data, 0.0)) - 1.0))

    def backward(grad):
        return (grad * np.where(positive, 1.0, data + alpha),)

    return Tensor._make(data, (a,), backward)


def sigmoid(a) -> Tensor:
    """Numerically stable logistic: exponentials only of non-positives."""
    a = _wrap(a)
    positive = a.data >= 0
    exp_neg = np.exp(np.where(positive, -a.data, a.data))  # always <= 1
    data = np.where(positive, 1.0 / (1.0 + exp_neg), exp_neg / (1.0 + exp_neg))

    def backward(grad):
        return (grad * data * (1.0 - data),)

    return Tensor._make(data, (a,), backward)


def tanh(a) -> Tensor:
    a = _wrap(a)
    data = np.tanh(a.data)

    def backward(grad):
        return (grad * (1.0 - data**2),)

    return Tensor._make(data, (a,), backward)


def softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    a = _wrap(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exped = np.exp(shifted)
    data = exped / exped.sum(axis=axis, keepdims=True)

    def backward(grad):
        inner = (grad * data).sum(axis=axis, keepdims=True)
        return (data * (grad - inner),)

    return Tensor._make(data, (a,), backward)


def masked_softmax(a, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax restricted to positions where ``mask`` is truthy.

    Masked positions get probability exactly 0 and receive no gradient.
    Rows with an all-false mask produce an all-zero row (not NaN) so that
    isolated graph nodes are handled gracefully.
    """
    a = _wrap(a)
    mask = np.asarray(mask, dtype=bool)
    big_negative = -1e30  # finite stand-in for -inf; exp underflows to 0
    logits = np.where(mask, a.data, big_negative)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exped = np.exp(shifted) * mask
    denom = exped.sum(axis=axis, keepdims=True)
    safe_denom = np.where(denom > 0, denom, 1.0)
    data = exped / safe_denom

    def backward(grad):
        inner = (grad * data).sum(axis=axis, keepdims=True)
        return (data * (grad - inner),)

    return Tensor._make(data, (a,), backward)


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
def where(condition: np.ndarray, a, b) -> Tensor:
    """Elementwise select; ``condition`` is a plain boolean array."""
    a, b = _wrap(a), _wrap(b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)

    def backward(grad):
        return (
            unbroadcast(grad * condition, a.shape),
            unbroadcast(grad * ~condition, b.shape),
        )

    return Tensor._make(data, (a, b), backward)


def maximum(a, b) -> Tensor:
    """Elementwise max of two tensors; ties send gradient to the first."""
    a, b = _wrap(a), _wrap(b)
    take_a = a.data >= b.data

    def backward(grad):
        return (
            unbroadcast(grad * take_a, a.shape),
            unbroadcast(grad * ~take_a, b.shape),
        )

    return Tensor._make(np.maximum(a.data, b.data), (a, b), backward)


def minimum(a, b) -> Tensor:
    """Elementwise min of two tensors; ties send gradient to the first."""
    a, b = _wrap(a), _wrap(b)
    take_a = a.data <= b.data

    def backward(grad):
        return (
            unbroadcast(grad * take_a, a.shape),
            unbroadcast(grad * ~take_a, b.shape),
        )

    return Tensor._make(np.minimum(a.data, b.data), (a, b), backward)


def dropout_mask(shape: tuple[int, ...], rate: float, rng: np.random.Generator) -> np.ndarray:
    """Inverted-dropout mask: zeros with probability ``rate``, else 1/(1-rate)."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if rate == 0.0:
        return np.ones(shape)
    keep = rng.random(shape) >= rate
    return keep / (1.0 - rate)

"""Deterministic fault injection: plans, rules, and call-site seams.

Production code marks its failure-prone seams with
:func:`fault_point("site") <fault_point>` (crash/hang/raise injection)
and :func:`fault_transform("site", value) <fault_transform>` (value
corruption). Both are inert until a :class:`FaultPlan` is armed: the
disarmed cost is one module-global read and a ``None`` check per site —
the same gating discipline as the ``repro.obs`` metric handles — so the
seams stay compiled into the hot paths of training and serving at zero
measurable overhead.

A plan is a list of :class:`FaultRule`\\ s scheduled *deterministically*:

* **by call count** — ``plan.on("parallel.worker0.sample", at=3)`` fires
  on exactly the third hit of that site (per process: a forked worker
  inherits the armed plan copy-on-write and counts its own hits);
* **periodically** — ``every=5`` fires on every fifth hit;
* **probabilistically but seeded** — ``probability=0.1`` draws from a
  per-rule ``random.Random`` derived from ``FaultPlan(seed=...)``, so
  the same plan replayed over the same workload fires at the same hits.

Every firing is appended to :attr:`FaultPlan.fired`, which chaos tests
assert against to prove a failure scenario is reproducible from its
seed.

Actions
-------
``raise``
    Raise :class:`InjectedFault` (or a caller-supplied exception).
``hang``
    Sleep ``hang_seconds`` — models a wedged worker or dispatcher.
``crash``
    ``os._exit(exit_code)`` — models a process dying mid-task; only
    meaningful inside forked gradient workers.
``call``
    Invoke a callback. At a :func:`fault_point` it receives the site
    name; at a :func:`fault_transform` it receives the value and its
    return value replaces it (poisoned results, clock skew).

Example::

    plan = FaultPlan(seed=0).on("parallel.worker0.sample", action="crash", at=2)
    with injected(plan):
        trainer.fit()          # worker 0 dies on its 2nd sample
    assert plan.fired          # and the injection actually happened
"""

from __future__ import annotations

import contextlib
import fnmatch
import os
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Iterator

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FiredFault",
    "InjectedFault",
    "active_plan",
    "arm",
    "disarm",
    "fault_point",
    "fault_transform",
    "injected",
]

_ACTIONS = ("raise", "hang", "crash", "call")


class InjectedFault(RuntimeError):
    """The default exception raised by a ``raise``-action fault rule."""

    def __init__(self, site: str, call_index: int) -> None:
        super().__init__(f"injected fault at {site!r} (call #{call_index})")
        self.site = site
        self.call_index = call_index


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One scheduled fault: where it matches, when it fires, what it does.

    ``site`` is an ``fnmatch`` pattern against seam names
    (``"parallel.worker*.sample"`` matches every worker). Exactly one of
    ``at``/``every``/``probability`` schedules the rule; ``max_fires``
    bounds how often it can fire (default once for ``at``, unbounded
    otherwise).
    """

    site: str
    action: str = "raise"
    at: tuple[int, ...] | None = None  # 1-based hit indices of the site
    every: int | None = None
    probability: float | None = None
    max_fires: int | None = None
    exception: BaseException | type[BaseException] | None = None
    hang_seconds: float = 0.05
    exit_code: int = 17
    callback: Callable[..., Any] | None = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}, got {self.action!r}")
        schedules = sum(
            x is not None for x in (self.at, self.every, self.probability)
        )
        if schedules > 1:
            raise ValueError("give at most one of at/every/probability")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.action == "call" and self.callback is None:
            raise ValueError("action='call' requires a callback")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")

    def matches(self, site: str) -> bool:
        return self.site == site or fnmatch.fnmatchcase(site, self.site)


@dataclass(frozen=True, slots=True)
class FiredFault:
    """One entry of a plan's reproducibility log."""

    site: str
    call_index: int  # which hit of the site fired (1-based)
    rule_index: int  # index of the rule in FaultPlan.rules
    action: str
    pid: int = field(default_factory=os.getpid)


class FaultPlan:
    """A seeded, schedulable set of fault rules.

    Thread-safe: sites on the serving path are hit from HTTP handler
    threads and the dispatcher concurrently. Deterministic: counters are
    per-site, probability draws come from per-rule seeded generators,
    and every firing is recorded in :attr:`fired`.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rules: list[FaultRule] = []
        self.hits: dict[str, int] = {}
        self.fired: list[FiredFault] = []
        self._fire_counts: dict[int, int] = {}
        self._rngs: dict[int, Random] = {}
        self._lock = threading.Lock()

    # -- authoring ------------------------------------------------------
    def on(
        self,
        site: str,
        action: str = "raise",
        at: int | tuple[int, ...] | None = None,
        every: int | None = None,
        probability: float | None = None,
        max_fires: int | None = None,
        exception: BaseException | type[BaseException] | None = None,
        hang_seconds: float = 0.05,
        exit_code: int = 17,
        callback: Callable[..., Any] | None = None,
    ) -> "FaultPlan":
        """Append a rule; chainable. ``at=3`` fires once, on the 3rd hit."""
        if isinstance(at, int):
            at = (at,)
        if max_fires is None and at is not None:
            max_fires = len(at)
        rule = FaultRule(
            site=site,
            action=action,
            at=at,
            every=every,
            probability=probability,
            max_fires=max_fires,
            exception=exception,
            hang_seconds=hang_seconds,
            exit_code=exit_code,
            callback=callback,
        )
        index = len(self.rules)
        self.rules.append(rule)
        # Stable per-rule stream: independent of dict/hash randomization.
        self._rngs[index] = Random(self.seed * 1_000_003 + index)
        return self

    # -- runtime --------------------------------------------------------
    def _select(self, site: str) -> tuple[FaultRule, int, int] | None:
        """Record a hit of ``site``; return (rule, rule_index, call_index)
        for the first rule that fires, or ``None``."""
        with self._lock:
            count = self.hits.get(site, 0) + 1
            self.hits[site] = count
            for index, rule in enumerate(self.rules):
                if not rule.matches(site):
                    continue
                fires = self._fire_counts.get(index, 0)
                if rule.max_fires is not None and fires >= rule.max_fires:
                    continue
                if rule.at is not None:
                    due = count in rule.at
                elif rule.every is not None:
                    due = count % rule.every == 0
                elif rule.probability is not None:
                    due = self._rngs[index].random() < rule.probability
                else:
                    due = True
                if not due:
                    continue
                self._fire_counts[index] = fires + 1
                self.fired.append(
                    FiredFault(site, count, index, rule.action)
                )
                return rule, index, count
        return None

    def _execute(self, rule: FaultRule, site: str, call_index: int) -> None:
        if rule.action == "raise":
            exc = rule.exception
            if exc is None:
                raise InjectedFault(site, call_index)
            raise exc() if isinstance(exc, type) else exc
        if rule.action == "hang":
            time.sleep(rule.hang_seconds)
            return
        if rule.action == "crash":
            os._exit(rule.exit_code)
        rule.callback(site)

    def hit(self, site: str) -> None:
        """Register one hit of ``site``; fire the first due rule, if any."""
        selected = self._select(site)
        if selected is not None:
            rule, _, call_index = selected
            self._execute(rule, site, call_index)

    def transform(self, site: str, value: Any) -> Any:
        """Like :meth:`hit`, but a ``call`` rule rewrites ``value``."""
        selected = self._select(site)
        if selected is None:
            return value
        rule, _, call_index = selected
        if rule.action == "call":
            return rule.callback(value)
        self._execute(rule, site, call_index)
        return value

    def reset(self) -> None:
        """Forget hits/fires (rules and seeds stay) for a fresh replay."""
        with self._lock:
            self.hits.clear()
            self.fired.clear()
            self._fire_counts.clear()
            for index in self._rngs:
                self._rngs[index] = Random(self.seed * 1_000_003 + index)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
            f"fired={len(self.fired)})"
        )


# ----------------------------------------------------------------------
# Process-global armed plan + the call-site seams
# ----------------------------------------------------------------------
_ACTIVE: FaultPlan | None = None


def arm(plan: FaultPlan) -> None:
    """Make ``plan`` the process-global armed plan."""
    global _ACTIVE
    _ACTIVE = plan


def disarm() -> None:
    """Deactivate fault injection; every seam becomes a cheap no-op again."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> FaultPlan | None:
    """The currently armed plan, or ``None``."""
    return _ACTIVE


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    arm(plan)
    try:
        yield plan
    finally:
        _ACTIVE = previous


def fault_point(site: str) -> None:
    """A named seam: no-op unless an armed plan schedules a fault here."""
    plan = _ACTIVE
    if plan is not None:
        plan.hit(site)


def fault_transform(site: str, value: Any) -> Any:
    """A value seam: armed ``call`` rules may rewrite ``value`` in flight."""
    plan = _ACTIVE
    if plan is None:
        return value
    return plan.transform(site, value)

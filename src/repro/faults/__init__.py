"""Deterministic fault injection for chaos-testing training and serving.

See :mod:`repro.faults.plan` for the full model. The short version::

    from repro.faults import FaultPlan, injected

    plan = FaultPlan(seed=0).on("serve.forecast", at=2)
    with injected(plan):
        ...  # the 2nd forward on the serving path raises InjectedFault

Seams currently threaded through the codebase:

==============================  =================================================
site                            where / what it models
==============================  =================================================
``parallel.worker{i}.task``     worker ``i`` begins a shard (crash/hang/raise)
``parallel.worker{i}.sample``   worker ``i`` mid-shard, one per sample
``parallel.worker{i}.reply``    transform: poison a worker's result payload
``parallel.shm.publish``        parent publishes parameters into the shm arena
``parallel.worker{i}.shm.attach``  worker ``i`` maps its arena views (at fork)
``parallel.worker{i}.shm.commit``  worker ``i`` between arena write and reply
``trainer.epoch``               start of each training epoch
``trainer.batch``               before each optimizer step (mid-epoch interrupt)
``serve.dispatch``              the dispatcher, per micro-batch (hang ⇒ overload)
``serve.forecast``              the model forward on the request path
``serve.reload``                checkpoint hot-reload, before the load
``state.ingest``                per trip event entering the flow store
``state.clock``                 transform: skew an event's (start, end) times
``state.rollover``              slot rollover in the flow store
``quality.reconcile``           quality monitor folding a closed slot's forecasts
``continual.extract``           continual loop, before reading store history
``continual.retrain``           before the warm-started incremental retrain
``continual.evaluate``          before the candidate-vs-live shadow evaluation
``continual.promote``           before the candidate checkpoint hits disk
``continual.promote.artifact``  transform: the checkpoint path between the
                                atomic write and the fleet rollout (bit rot)
==============================  =================================================
"""

from repro.faults.plan import (
    FaultPlan,
    FaultRule,
    FiredFault,
    InjectedFault,
    active_plan,
    arm,
    disarm,
    fault_point,
    fault_transform,
    injected,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FiredFault",
    "InjectedFault",
    "active_plan",
    "arm",
    "disarm",
    "fault_point",
    "fault_transform",
    "injected",
]

"""repro — reproduction of STGNN-DJD (Li et al., ICDE 2022).

A data-driven spatial-temporal graph neural network for docked bike
demand and supply prediction, rebuilt from scratch: a numpy autograd
engine, a neural-network layer library, a bike-share data substrate with
a synthetic city generator, the STGNN-DJD model with its two
spatial-temporal graphs (flow-convoluted and pattern-correlation), every
baseline from the paper's evaluation, and an experiment harness that
regenerates each table and figure.

Quickstart::

    from repro import SyntheticCityConfig, generate_city, STGNNDJD, Trainer

    dataset = generate_city(SyntheticCityConfig.la_like(days=14), seed=7)
    model = STGNNDJD.from_dataset(dataset, seed=7)
    Trainer(model, dataset).fit(epochs=5)
"""

from repro import backend, faults, obs
from repro.obs import ObservabilityConfig
from repro.tensor import Tensor, inference_mode, no_grad
from repro.data import (
    BikeShareDataset,
    FlowDataConfig,
    Station,
    StationRegistry,
    SyntheticCityConfig,
    TripRecord,
    clean_trips,
    generate_city,
)
from repro.core import STGNNDJD, STGNNDJDConfig, Trainer, TrainingConfig
from repro.eval import evaluate_model, mae, rmse

__version__ = "1.0.0"

__all__ = [
    "Tensor",
    "no_grad",
    "inference_mode",
    "backend",
    "faults",
    "obs",
    "ObservabilityConfig",
    "TripRecord",
    "Station",
    "StationRegistry",
    "clean_trips",
    "FlowDataConfig",
    "BikeShareDataset",
    "SyntheticCityConfig",
    "generate_city",
    "STGNNDJD",
    "STGNNDJDConfig",
    "Trainer",
    "TrainingConfig",
    "evaluate_model",
    "rmse",
    "mae",
    "__version__",
]

"""Project logger configuration.

A thin wrapper over :mod:`logging` so library modules never call
``basicConfig`` (which would hijack the host application's logging).

Levels are sticky: :func:`get_logger` configures a logger's level only
when it first installs the handler. Repeat calls — every module does
one at import time — never clobber a level the host application (or a
prior caller) has set. Use :func:`set_global_level` to change every
``repro.*`` logger at once.
"""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"
_ROOT_NAME = "repro"


def get_logger(name: str, level: int | None = None) -> logging.Logger:
    """Return a namespaced logger with a one-time stream handler.

    ``level`` applies only on the call that installs the handler
    (defaulting to ``INFO``); afterwards the configured level — whether
    set here, by the host application, or via :func:`set_global_level` —
    is left alone.
    """
    logger = logging.getLogger(f"{_ROOT_NAME}.{name}")
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
        logger.propagate = False
        logger.setLevel(logging.INFO if level is None else level)
    return logger


def set_global_level(level: int) -> None:
    """Set ``level`` on every existing ``repro.*`` logger (and the root).

    Loggers created by :func:`get_logger` don't propagate to the
    ``repro`` parent, so each one carries its own level; this walks the
    logging manager's registry and updates them all in one call.
    """
    logging.getLogger(_ROOT_NAME).setLevel(level)
    for name, logger in logging.Logger.manager.loggerDict.items():
        if isinstance(logger, logging.Logger) and name.startswith(f"{_ROOT_NAME}."):
            logger.setLevel(level)

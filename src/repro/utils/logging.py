"""Project logger configuration.

A thin wrapper over :mod:`logging` so library modules never call
``basicConfig`` (which would hijack the host application's logging).
"""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a namespaced logger with a one-time stream handler."""
    logger = logging.getLogger(f"repro.{name}")
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
        logger.propagate = False
    logger.setLevel(level)
    return logger

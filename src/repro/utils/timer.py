"""Wall-clock timing for the efficiency experiments (paper Sec. VII-I)."""

from __future__ import annotations

import time
from typing import Callable


class Timer:
    """Context-manager stopwatch accumulating over repeated sections.

    Not reentrant: a ``Timer`` times disjoint sections, and nesting the
    same instance would silently overwrite the running start time and
    corrupt ``total`` — so nested entry raises instead. Use separate
    ``Timer`` instances (or :func:`repro.obs.span`) for nested scopes.

    ``clock`` injects the time source (default
    :func:`time.perf_counter`), so tests can drive a fake clock forward
    deterministically instead of sleeping real wall time.

    >>> timer = Timer()
    >>> with timer:
    ...     pass
    >>> timer.count
    1
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.total = 0.0
        self.count = 0
        self._clock = clock
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError(
                "Timer is not reentrant: already timing a section"
            )
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is None:
            raise RuntimeError("Timer exited without entering")
        self.total += self._clock() - self._start
        self.count += 1
        self._start = None

    @property
    def running(self) -> bool:
        """Whether the timer is currently inside a ``with`` block."""
        return self._start is not None

    @property
    def mean(self) -> float:
        """Mean seconds per timed section (0 if never used)."""
        return self.total / self.count if self.count else 0.0

"""Shared utilities: seeding, timing, and lightweight logging."""

from repro.utils.seeding import seeded_rng, spawn_rngs
from repro.utils.timer import Timer
from repro.utils.logging import get_logger, set_global_level

__all__ = ["seeded_rng", "spawn_rngs", "Timer", "get_logger", "set_global_level"]

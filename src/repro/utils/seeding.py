"""Deterministic random number generation helpers.

Every stochastic component in the repo (weight init, dropout, data
synthesis, batching) takes an explicit ``numpy.random.Generator``. These
helpers create and fan out generators so that experiment scripts are
reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np


def seeded_rng(seed: int | None = None) -> np.random.Generator:
    """Create a generator from a seed (or fresh entropy when None)."""
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are seeded from the parent stream, so distinct components
    (e.g. model init vs. dropout vs. batch shuffling) never share state.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]

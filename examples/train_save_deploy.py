"""Train offline, checkpoint, and serve online — the Sec. VII-I story.

The paper argues STGNN-DJD deploys online because a trained model
predicts a slot in milliseconds without retraining. This script walks
that lifecycle:

    python examples/train_save_deploy.py [--checkpoint /tmp/stgnn.npz]

1. train on a synthetic city and save a ``.npz`` checkpoint;
2. in a fresh "serving" phase, rebuild the model from the checkpoint
   alone (no dataset needed for the weights);
3. replay the test days as an online loop, timing each per-slot
   prediction and comparing the mean latency to the slot duration;
4. boot a :class:`repro.serve.PredictionService` from the checkpoint,
   stream live trip events into its incremental flow-state store, and
   answer micro-batched forecast queries — the production-shaped path.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro import (
    STGNNDJD,
    SyntheticCityConfig,
    Trainer,
    TrainingConfig,
    evaluate_model,
    generate_city,
)
from repro.core import load_stgnn, save_checkpoint
from repro.serve import FlowStateStore, PredictionService
from repro.utils import Timer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--checkpoint", type=Path, default=Path("/tmp/stgnn.npz"))
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--epochs", type=int, default=6)
    args = parser.parse_args()

    config = SyntheticCityConfig(
        name="deploy-city", num_stations=12, days=14,
        trips_per_day=70.0 * 12, slot_seconds=1800.0,
        short_window=48, long_days=3,
    )
    dataset = generate_city(config, seed=args.seed)

    # --- offline phase -------------------------------------------------
    print("[offline] training ...")
    model = STGNNDJD.from_dataset(dataset, seed=args.seed)
    trainer = Trainer(model, dataset,
                      TrainingConfig(epochs=args.epochs, seed=args.seed))
    trainer.fit()
    save_checkpoint(model, args.checkpoint)
    size_kb = args.checkpoint.stat().st_size / 1024
    print(f"[offline] checkpoint written: {args.checkpoint} ({size_kb:.0f} KiB)")

    # --- online phase ---------------------------------------------------
    print("[online] rebuilding model from checkpoint only ...")
    served = load_stgnn(args.checkpoint)
    serving_trainer = Trainer(served, dataset)  # dataset supplies the stream

    _, _, test_idx = dataset.split_indices()
    timer = Timer()
    for t in test_idx:
        with timer:
            serving_trainer.predict(int(t))
    slot = dataset.config.slot_seconds
    print(f"[online] served {timer.count} slots, "
          f"mean latency {timer.mean * 1000:.1f} ms "
          f"({timer.mean / slot * 100:.4f}% of the {slot:.0f}s slot)")
    print(f"[online] accuracy: {evaluate_model(serving_trainer, dataset)}")

    # --- serving phase --------------------------------------------------
    # The production-shaped path: an incremental flow-state store fed by
    # live events, a micro-batching dispatcher, and a per-slot cache.
    print("[serving] booting PredictionService from checkpoint ...")
    store = FlowStateStore.from_dataset(dataset)
    with PredictionService.from_checkpoint(
        args.checkpoint, store,
        dataset.demand_normalizer, dataset.supply_normalizer,
    ) as service:
        forecast = service.predict()
        print(f"[serving] slot {forecast.slot}: "
              f"demand[0]={forecast.demand[0]:.2f} "
              f"supply[0]={forecast.supply[0]:.2f}")
        # Stream a few live trips into the open slot, roll the clock
        # over, and forecast the next slot from the updated state.
        now = store.frontier * slot
        for origin, destination in [(0, 5), (3, 2), (7, 0), (5, 11)]:
            store.ingest_event(origin, destination,
                               start_time=now + 60.0,
                               end_time=now + 60.0 + slot / 2)
        store.advance_to(store.frontier + 1)
        forecast = service.predict()
        cached = service.predict()  # same slot, same state: served from cache
        print(f"[serving] slot {forecast.slot} after ingest+rollover: "
              f"demand[0]={forecast.demand[0]:.2f} "
              f"(repeat query cached={cached.cached})")
    print("[serving] service stopped cleanly")


if __name__ == "__main__":
    main()

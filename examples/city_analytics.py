"""City analytics: what does the operator's dashboard show?

A no-training tour of the analysis toolkit over a synthetic city:
station activity ranking, busiest hours, OD concentration, and the
structural imbalance map (where bikes pile up or bleed away by
time-of-day) — the context in which demand/supply prediction operates.

    python examples/city_analytics.py [--seed 2]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import SyntheticCityConfig, generate_city
from repro.eval import (
    busiest_hours,
    imbalance_by_slot,
    od_concentration,
    station_summaries,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    config = SyntheticCityConfig(
        name="analytics-city", num_stations=16, days=14,
        trips_per_day=120.0 * 16, slot_seconds=1800.0,
        short_window=48, long_days=3, school_pairs=2,
    )
    dataset = generate_city(config, seed=args.seed)
    spd = dataset.slots_per_day
    print(f"{dataset}: {dataset.demand.sum():.0f} checkouts over "
          f"{dataset.num_days} days")

    print("\nTop stations by demand:")
    print("  rank | station | name        | demand | supply | net outflow | peak hour")
    for rank, s in enumerate(station_summaries(dataset)[:6], start=1):
        peak_hour = s.peak_demand_slot * 24.0 / spd
        print(f"  {rank:>4} | {s.station_id:>7} | {s.name:<11} "
              f"| {s.total_demand:>6.0f} | {s.total_supply:>6.0f} "
              f"| {s.net_outflow:>+11.0f} | {peak_hour:>6.1f}h")

    hours = [f"{slot * 24.0 / spd:.1f}h" for slot in busiest_hours(dataset, count=3)]
    print(f"\nBusiest times of day (citywide): {', '.join(hours)}")

    share = od_concentration(dataset, top_fraction=0.1)
    print(f"Top 10% of OD pairs carry {share * 100:.0f}% of all trips "
          "(heavy-tailed, as in real systems)")

    print("\nStructural imbalance (mean net outflow, morning vs evening):")
    net = imbalance_by_slot(dataset)
    morning = net[int(8 * spd / 24)]
    evening = net[int(18 * spd / 24)]
    print("  station | 08:00 | 18:00")
    for station in np.argsort(-np.abs(morning))[:5]:
        print(f"  {station:>7} | {morning[station]:>+5.1f} | {evening[station]:>+5.1f}")
    print("\n(Commuter structure: home stations bleed bikes in the morning and "
          "refill in the evening; work stations mirror it.)")


if __name__ == "__main__":
    main()

"""Multi-step forecasting — the paper's Sec. IX extension, implemented.

The paper sketches extending STGNN-DJD to predict several future slots
jointly by widening the output head. This repo implements that via
``STGNNDJDConfig.horizon``; the script trains a horizon-3 model and
reports how accuracy degrades per step ahead.

    python examples/multi_step_forecast.py [--seed 5] [--horizon 3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    STGNNDJD,
    SyntheticCityConfig,
    Trainer,
    TrainingConfig,
    generate_city,
)
from repro.eval import active_station_mask, mae, rmse


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--horizon", type=int, default=3)
    parser.add_argument("--epochs", type=int, default=8)
    args = parser.parse_args()

    config = SyntheticCityConfig(
        name="multi-step-city",
        num_stations=12,
        days=14,
        trips_per_day=70.0 * 12,
        slot_seconds=1800.0,
        short_window=48,
        long_days=3,
    )
    dataset = generate_city(config, seed=args.seed)
    model = STGNNDJD.from_dataset(dataset, seed=args.seed, horizon=args.horizon)
    print(f"Training horizon-{args.horizon} STGNN-DJD on {dataset} ...")
    trainer = Trainer(model, dataset,
                      TrainingConfig(epochs=args.epochs, seed=args.seed))
    trainer.fit()

    _, _, test_idx = dataset.split_indices()
    test_idx = test_idx[test_idx <= dataset.num_slots - args.horizon]

    demand_pred = np.empty((len(test_idx), dataset.num_stations, args.horizon))
    supply_pred = np.empty_like(demand_pred)
    for row, t in enumerate(test_idx):
        demand_pred[row], supply_pred[row] = trainer.predict(int(t))

    print("\nError by forecast step (paper-style RMSE/MAE, active stations):")
    print("  step | horizon slot | RMSE   | MAE")
    for step in range(args.horizon):
        targets_t = test_idx + step
        demand_true = dataset.demand[targets_t]
        supply_true = dataset.supply[targets_t]
        mask = active_station_mask(demand_true, supply_true)
        step_rmse = rmse(demand_true, demand_pred[:, :, step],
                         supply_true, supply_pred[:, :, step], mask)
        step_mae = mae(demand_true, demand_pred[:, :, step],
                       supply_true, supply_pred[:, :, step], mask)
        print(f"  {step:>4} | t + {step:<8} | {step_rmse:.3f} | {step_mae:.3f}")

    print("\nExpected shape: error grows (or stays flat) with the step —")
    print("the further ahead, the less the current flows pin the future down.")


if __name__ == "__main__":
    main()

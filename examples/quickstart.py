"""Quickstart: generate a city, train STGNN-DJD, evaluate against HA.

Runs end-to-end in about a minute on a laptop CPU::

    python examples/quickstart.py [--seed 7] [--epochs 8]

Steps:
1. synthesise a small bike-share city (trips → cleaning → flow matrices);
2. build STGNN-DJD sized to the dataset and train it with the paper's
   protocol (Adam, joint demand-supply loss, early stopping);
3. evaluate RMSE/MAE on the held-out test days (paper Eqs. 22-23,
   inactive stations excluded) next to the Historical Average baseline.
"""

from __future__ import annotations

import argparse

from repro import (
    STGNNDJD,
    SyntheticCityConfig,
    Trainer,
    TrainingConfig,
    evaluate_model,
    generate_city,
)
from repro.baselines import HistoricalAverage


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--stations", type=int, default=12)
    parser.add_argument("--days", type=int, default=14)
    args = parser.parse_args()

    config = SyntheticCityConfig(
        name="quickstart-city",
        num_stations=args.stations,
        days=args.days,
        trips_per_day=60.0 * args.stations,
        slot_seconds=1800.0,  # 30-minute slots
        short_window=48,
        long_days=3,
        school_pairs=1,
    )
    print(f"Generating {config.name}: {config.num_stations} stations, "
          f"{config.days} days, ~{config.trips_per_day:.0f} trips/day ...")
    dataset = generate_city(config, seed=args.seed)
    train_idx, val_idx, test_idx = dataset.split_indices()
    print(f"  {dataset}")
    print(f"  split: {len(train_idx)} train / {len(val_idx)} val / "
          f"{len(test_idx)} test prediction slots")

    print("\nTraining STGNN-DJD (flow convolution + FCG + PCG) ...")
    model = STGNNDJD.from_dataset(dataset, seed=args.seed)
    print(f"  {model.num_parameters():,} learnable parameters")
    trainer = Trainer(
        model, dataset,
        TrainingConfig(epochs=args.epochs, seed=args.seed, verbose=False),
    )
    history = trainer.fit()
    print(f"  trained {len(history.train_loss)} epochs "
          f"(best epoch {history.best_epoch}, "
          f"early stop: {history.stopped_early})")
    print("  val loss per epoch:",
          " ".join(f"{v:.3f}" for v in history.val_loss))

    print("\nTest-set results (Eqs. 22-23, inactive stations excluded):")
    ours = evaluate_model(trainer, dataset)
    ha = evaluate_model(HistoricalAverage(dataset).fit(), dataset)
    print(f"  STGNN-DJD          {ours}")
    print(f"  Historical Average {ha}")
    if ours.rmse < ha.rmse:
        gain = 100.0 * (1.0 - ours.rmse / ha.rmse)
        print(f"  -> STGNN-DJD improves RMSE by {gain:.0f}% over HA")

    t = int(test_idx[0])
    demand, supply = trainer.predict(t)
    print(f"\nSample prediction for slot t={t} "
          f"(hour {dataset.slot_of_day(t) / 2:.1f}):")
    print("  station | predicted demand | actual | predicted supply | actual")
    for station in range(min(5, dataset.num_stations)):
        print(f"  {station:>7} | {demand[station]:>16.1f} "
              f"| {dataset.demand[t, station]:>6.0f} "
              f"| {supply[station]:>16.1f} | {dataset.supply[t, station]:>6.0f}")


if __name__ == "__main__":
    main()

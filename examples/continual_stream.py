"""Close the loop: a month of live traffic, retrained and auto-deployed.

Simulates the full online lifecycle of the paper's model:

1. **Offline** — train STGNN-DJD on the first ten days of a synthetic
   city and deploy it behind a :class:`PredictionService`.
2. **Stream** — replay the remaining weeks trip by trip into the live
   :class:`FlowStateStore`, forecasting every slot with (a) the
   continually-updated deployment and (b) a frozen copy of the launch
   checkpoint, each scored by its own rolling quality monitor.
3. **Continual learning** — every couple of days the
   :class:`ContinualLearner` extracts recent history from the store,
   warm-starts an incremental retrain from the last training snapshot,
   shadow-evaluates the candidate against the live model on held-back
   slots, and auto-promotes only when the candidate is at least as good.
4. **Station churn** — mid-stream, one station closes and a brand-new
   one opens. The whole deployment — store ring buffers, model
   parameters, optimizer moments, serving caches — is remapped live,
   with no restart and no cold-start retrain.

Exit checks (the point of the demo):

* the continual deployment's rolling joint RMSE (paper Eq. 22) ends the
  stream **no worse than the frozen baseline's**;
* at least one candidate was promoted, and *every* promotion in the
  recorded event stream was preceded by its shadow evaluation;
* a rolling-RMSE report is written as a JSON artifact.

    python examples/continual_stream.py                  # month-long stream
    python examples/continual_stream.py --smoke          # CI-sized stream
    python examples/continual_stream.py --report out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from collections import defaultdict
from pathlib import Path

from repro.continual import ContinualConfig, ContinualLearner, GraphEvolution, evolve_model
from repro.core.model import STGNNDJD
from repro.core.persistence import load_stgnn, save_checkpoint, save_training_snapshot
from repro.core.trainer import Trainer, TrainingConfig
from repro.data.cleaning import clean_trips
from repro.data.dataset import BikeShareDataset, FlowDataConfig
from repro.data.flows import build_flow_tensors
from repro.data.synthetic import SyntheticCityConfig, build_city, generate_trips
from repro.obs.events import JsonlExporter, read_events, sink_scope
from repro.obs.quality import QualityConfig
from repro.serve.service import PredictionService, ServiceConfig
from repro.serve.state import FlowStateStore

MODEL_KWARGS = dict(fcg_layers=1, pcg_layers=1, num_heads=2, dropout=0.0)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized stream: 16 days instead of 31")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--report", type=Path, default=None,
                        help="where to write the rolling-RMSE JSON artifact")
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    days = 16 if args.smoke else 31
    warmup_days = 10
    churn_day = 12 if args.smoke else 18
    cycle_days = 2          # retrain cadence after the warmup
    offline_epochs = 1 if args.smoke else 2

    config = SyntheticCityConfig.tiny(days=days, num_stations=6)
    spd = config.slots_per_day
    slot_seconds = config.slot_seconds
    n = config.num_stations
    warmup_slots = warmup_days * spd
    total_slots = days * spd

    # ------------------------------------------------------------------
    # The "real world": one trip log for the whole month.
    # ------------------------------------------------------------------
    city = build_city(config, seed=args.seed)
    trips = generate_trips(city, seed=args.seed)
    clean, _report = clean_trips(trips, n)
    trips_by_slot: dict[int, list] = defaultdict(list)
    for trip in clean:
        trips_by_slot[trip.start_slot(slot_seconds)].append(trip)

    # ------------------------------------------------------------------
    # Offline: train on the first ten days, deploy the checkpoint.
    # ------------------------------------------------------------------
    warmup_trips = [t for t in clean if t.start_slot(slot_seconds) < warmup_slots]
    inflow, outflow = build_flow_tensors(warmup_trips, n, warmup_slots, slot_seconds)
    warmup = BikeShareDataset(
        city.registry, inflow, outflow,
        FlowDataConfig(
            slot_seconds=slot_seconds,
            short_window=config.short_window,
            long_days=config.long_days,
        ),
        name="warmup",
    )
    print(f"Offline training on {warmup_days} days "
          f"({offline_epochs} epoch{'s' if offline_epochs > 1 else ''}) ...")
    model = STGNNDJD.from_dataset(warmup, seed=3, **MODEL_KWARGS)
    trainer = Trainer(model, warmup, TrainingConfig(
        epochs=offline_epochs, batch_size=16, seed=0,
    ))
    history = trainer.fit()
    out_dir = Path(tempfile.mkdtemp(prefix="continual-stream-"))
    ckpt = out_dir / "model.npz"
    snap = out_dir / "snapshot.npz"
    save_checkpoint(model, ckpt)
    save_training_snapshot(snap, trainer.capture_snapshot(
        epoch=offline_epochs - 1, history=history,
    ))

    # ------------------------------------------------------------------
    # Live wiring: one store, two deployments, one learner.
    # ------------------------------------------------------------------
    store = FlowStateStore.from_dataset(warmup, retained_slots=9 * spd)
    quality = QualityConfig(window=2 * spd, min_samples=1)
    live = PredictionService(
        model, store, warmup.demand_normalizer, warmup.supply_normalizer,
        config=ServiceConfig(name="serve.live", quality=quality, cache=False),
    ).start()
    frozen_model = load_stgnn(ckpt)
    frozen = PredictionService(
        frozen_model, store, warmup.demand_normalizer, warmup.supply_normalizer,
        config=ServiceConfig(name="serve.frozen", quality=quality, cache=False),
    ).start()
    learner = ContinualLearner(
        store, live, warmup.registry,
        ContinualConfig(
            checkpoint_path=str(ckpt), snapshot_path=str(snap),
            train_days=7, retrain_epochs=1, holdback_slots=6, seed=args.seed,
        ),
        demand_normalizer=warmup.demand_normalizer,
        supply_normalizer=warmup.supply_normalizer,
        flow_scale=warmup.flow_scale,
    )

    # Churn: the last station closes, a brand-new one opens in its slot
    # id. Keeping ids 0..n-2 means surviving trips replay unchanged;
    # trips touching the closed station simply stop arriving.
    retired = n - 1
    evolution = GraphEvolution(n, tuple(range(n - 1)), 1)

    rolling_series: list[dict] = []
    events_path = out_dir / "events.jsonl"
    cycle_results = []
    print(f"Streaming days {warmup_days}..{days} "
          f"(churn at day {churn_day}, retrain every {cycle_days} days) ...")
    try:
        with sink_scope(JsonlExporter(events_path)) as sink:
            for slot in range(warmup_slots, total_slots):
                live.predict()
                frozen.predict()
                for trip in trips_by_slot.get(slot, ()):
                    if store.config.num_stations < n and (
                        trip.origin == retired or trip.destination == retired
                    ):
                        continue  # the closed station's dock is gone
                    store.ingest(trip)
                store.advance_to(slot + 1)

                if (slot + 1) % spd:
                    continue
                day = (slot + 1) // spd
                live_rolling = live.quality.rolling(0)
                frozen_rolling = frozen.quality.rolling(0)
                rolling_series.append({
                    "day": day,
                    "continual_rmse": None if live_rolling is None
                    else live_rolling["rmse"],
                    "frozen_rmse": None if frozen_rolling is None
                    else frozen_rolling["rmse"],
                    "model_version": live.model_version,
                })
                if day == churn_day:
                    drained = learner.apply_station_change(evolution)
                    # The frozen baseline gets the same surgery — kept
                    # weights moved, identical fresh rows for the new
                    # station — but never any retraining.
                    frozen_model = evolve_model(
                        frozen_model, evolution, seed=args.seed,
                    )
                    frozen_ckpt = out_dir / "frozen-evolved.npz"
                    save_checkpoint(frozen_model, frozen_ckpt)
                    frozen.on_graph_evolved()
                    frozen.reload(frozen_ckpt)
                    print(f"  day {day}: station {retired} closed, one "
                          f"opened (drained {drained:.0f} in-transit "
                          f"arrivals); fleet remapped live")
                elif day < days and (day - warmup_days) % cycle_days == 0:
                    result = learner.run_cycle()
                    cycle_results.append(result)
                    verdict = ("promoted -> v" + str(result.model_version)
                               if result.promoted else "held back")
                    print(f"  day {day}: cycle {result.cycle} candidate "
                          f"{result.candidate_rmse:.4f} vs live "
                          f"{result.live_rmse:.4f} RMSE on "
                          f"{result.eval_samples} shadow slots — {verdict}")
            sink.close()
    finally:
        live.stop()
        frozen.stop()

    # ------------------------------------------------------------------
    # Exit checks.
    # ------------------------------------------------------------------
    final_live = live.quality.rolling(0)
    final_frozen = frozen.quality.rolling(0)
    print(f"\nFinal rolling joint RMSE over the last {2 * spd} slots:")
    print(f"  continual  {final_live['rmse']:.4f}  "
          f"(model v{live.model_version}, {learner.promotions} promotions)")
    print(f"  frozen     {final_frozen['rmse']:.4f}")
    assert final_live["rmse"] <= final_frozen["rmse"] + 1e-9, (
        "continual deployment ended worse than the frozen baseline"
    )
    assert learner.promotions >= 1, "no candidate was ever promoted"

    # Every promotion in the event stream must have been preceded by its
    # own shadow evaluation — nothing ships unevaluated.
    shadow_evaled: set[int] = set()
    promoted_cycles: list[int] = []
    for event in read_events(events_path):
        if event["name"] == "continual.shadow_eval":
            shadow_evaled.add(event["data"]["cycle"])
        elif event["name"] == "continual.promoted":
            cycle = event["data"]["cycle"]
            assert cycle in shadow_evaled, (
                f"cycle {cycle} promoted without shadow evaluation"
            )
            promoted_cycles.append(cycle)
    assert len(promoted_cycles) == learner.promotions
    print(f"Every promotion ({promoted_cycles}) went through shadow "
          f"evaluation first — verified from the event stream.")

    report = {
        "mode": "smoke" if args.smoke else "full",
        "days": days,
        "stations": n,
        "warmup_days": warmup_days,
        "churn_day": churn_day,
        "cycles": len(cycle_results),
        "promotions": learner.promotions,
        "promoted_cycles": promoted_cycles,
        "final_continual_rmse": final_live["rmse"],
        "final_frozen_rmse": final_frozen["rmse"],
        "rolling": rolling_series,
    }
    report_path = args.report or out_dir / "rolling_rmse.json"
    report_path.parent.mkdir(parents=True, exist_ok=True)
    report_path.write_text(json.dumps(report, indent=2))
    print(f"Rolling-RMSE report written to {report_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Rush-hour operations: where will bikes run short tomorrow morning?

The scenario from the paper's introduction: the operator needs demand
and supply forecasts at rush hours to dispatch bikes ahead of shortages.

    python examples/rush_hour_operations.py [--seed 3]

The script trains STGNN-DJD on a commuter-heavy synthetic city, then:
1. compares whole-day vs morning-rush vs evening-rush accuracy
   (the paper's Table II cut);
2. forecasts the morning rush of the last test day and ranks stations
   by predicted net outflow (demand - supply) — the shortage risk list
   an operator would act on.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    STGNNDJD,
    SyntheticCityConfig,
    Trainer,
    TrainingConfig,
    evaluate_model,
    generate_city,
)
from repro.eval import rush_window_times
from repro.rebalance import plan_rebalancing


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--epochs", type=int, default=8)
    args = parser.parse_args()

    config = SyntheticCityConfig(
        name="commuter-city",
        num_stations=14,
        days=14,
        trips_per_day=80.0 * 14,
        slot_seconds=1800.0,
        short_window=48,
        long_days=3,
        school_pairs=1,
    )
    dataset = generate_city(config, seed=args.seed)
    print(f"{dataset}")

    model = STGNNDJD.from_dataset(dataset, seed=args.seed)
    trainer = Trainer(
        model, dataset, TrainingConfig(epochs=args.epochs, seed=args.seed)
    )
    trainer.fit()

    print("\nAccuracy by window (paper Table II cut):")
    for window, label in [(None, "whole day"), ("morning", "morning rush 07-10"),
                          ("evening", "evening rush 17-20")]:
        result = evaluate_model(trainer, dataset, window=window)
        print(f"  {label:<22} {result}")

    # Forecast tomorrow's morning rush and rank shortage risk.
    last_day = dataset.num_days - 1
    times = rush_window_times(dataset, last_day, 7.0, 10.0)
    net_outflow = np.zeros(dataset.num_stations)
    for t in times:
        demand, supply = trainer.predict(int(t))
        net_outflow += demand - supply

    print(f"\nPredicted net outflow (demand - supply) for day {last_day}, "
          f"07:00-10:00:")
    order = np.argsort(-net_outflow)
    print("  rank | station | name            | predicted net outflow")
    for rank, station in enumerate(order[:8], start=1):
        name = dataset.registry[int(station)].name
        flag = "  <- dispatch bikes here" if net_outflow[station] > 0 and rank <= 3 else ""
        print(f"  {rank:>4} | {station:>7} | {name:<15} "
              f"| {net_outflow[station]:>+8.1f}{flag}")

    actual = (dataset.demand[times] - dataset.supply[times]).sum(axis=0)
    overlap = len(set(order[:3].tolist()) & set(np.argsort(-actual)[:3].tolist()))
    print(f"\n  top-3 shortage stations correctly identified: {overlap}/3")

    # Turn the forecast into an actual dispatch plan.
    plan = plan_rebalancing(
        net_outflow, dataset.registry.distance_matrix(), capacity_per_move=10
    )
    print(f"\nDispatch plan for the window: {plan}")
    for move in plan.moves[:6]:
        print(f"  move {move.bikes:>2} bikes: station {move.source} -> "
              f"{move.destination} ({move.distance_km:.1f} km)")
    if len(plan.moves) > 6:
        print(f"  ... and {len(plan.moves) - 6} more moves")


if __name__ == "__main__":
    main()

"""Using your own trip data: CSV → cleaning → dataset → model.

Shows the exact pipeline a user with real bike-share exports (Divvy,
Metro, Citi Bike, ...) would run. For demonstration the script first
*writes* a CSV pair from the synthetic generator (with deliberately
dirty records), then pretends it's foreign data:

    python examples/custom_data_pipeline.py [--workdir /tmp/bikes]

1. read stations.csv / trips.csv;
2. clean abnormal records (negative durations, >24h trips, unknown
   stations) and print the cleaning report, per paper Sec. VII-A;
3. slot the trips into inflow/outflow matrices;
4. assemble a ``BikeShareDataset`` and train a small model on it.
"""

from __future__ import annotations

import argparse
import dataclasses
from pathlib import Path

from repro import STGNNDJD, Trainer, TrainingConfig, evaluate_model
from repro.data import (
    BikeShareDataset,
    FlowDataConfig,
    SyntheticCityConfig,
    build_city,
    build_flow_tensors,
    clean_trips,
    generate_trips,
    read_stations_csv,
    read_trips_csv,
    write_stations_csv,
    write_trips_csv,
)


def fabricate_export(workdir: Path, seed: int) -> SyntheticCityConfig:
    """Write a 'foreign' CSV export, 5% of whose rows are corrupt."""
    config = SyntheticCityConfig(
        name="csv-city", num_stations=10, days=12,
        trips_per_day=50.0 * 10, slot_seconds=1800.0,
        short_window=48, long_days=3, dirty_fraction=0.05,
    )
    city = build_city(config, seed=seed)
    trips = generate_trips(city, seed=seed)
    write_stations_csv(city.registry, workdir / "stations.csv")
    write_trips_csv(trips, workdir / "trips.csv")
    print(f"Wrote {len(trips)} trips (including dirty rows) to {workdir}")
    return config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", type=Path, default=Path("/tmp/repro-bikes"))
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument("--epochs", type=int, default=6)
    args = parser.parse_args()
    args.workdir.mkdir(parents=True, exist_ok=True)

    config = fabricate_export(args.workdir, args.seed)

    # --- From here on: the real-data path. ---
    registry = read_stations_csv(args.workdir / "stations.csv")
    trips = read_trips_csv(args.workdir / "trips.csv")
    print(f"\nLoaded {len(registry)} stations, {len(trips)} raw trips")

    clean, report = clean_trips(trips, num_stations=len(registry))
    print("Cleaning report (paper Sec. VII-A rules):")
    for rule, count in report.as_dict().items():
        print(f"  {rule:<20} {count}")

    num_slots = config.days * config.slots_per_day
    inflow, outflow = build_flow_tensors(
        clean, len(registry), num_slots, config.slot_seconds
    )
    dataset = BikeShareDataset(
        registry, inflow, outflow,
        FlowDataConfig(slot_seconds=config.slot_seconds,
                       short_window=config.short_window,
                       long_days=config.long_days),
        name="csv-city",
    )
    print(f"\nAssembled {dataset}")

    model = STGNNDJD.from_dataset(dataset, seed=args.seed)
    trainer = Trainer(model, dataset,
                      TrainingConfig(epochs=args.epochs, seed=args.seed))
    trainer.fit()
    print(f"Test result: {evaluate_model(trainer, dataset)}")


if __name__ == "__main__":
    main()

"""Case study (paper Sec. VIII): is dependency really local?

Trains STGNN-DJD, then prints, for the busiest station, the learned
PCG-attention dependency on its ten nearest stations across a morning
and an afternoon window (the paper's Figs. 11-12), next to what a
locality-prior model would assume (Fig. 10).

    python examples/case_study_dependency.py [--seed 11]

Things to look for in the output (the paper's observations):
* learned heatmap cells differ down each column -> dependency varies
  over time;
* cells differ along each row -> different pairs, different dependency;
* dark cells appear in the right (distant) columns -> the locality
  assumption does not always hold.
"""

from __future__ import annotations

import argparse

from repro import (
    STGNNDJD,
    SyntheticCityConfig,
    Trainer,
    TrainingConfig,
    generate_city,
)
from repro.eval import (
    locality_dependency_heatmap,
    model_dependency_heatmap,
    render_heatmap,
    rush_window_times,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--epochs", type=int, default=8)
    args = parser.parse_args()

    # A city with two distant "school" pairs: the configuration where
    # locality priors fail and pattern correlation shines.
    config = SyntheticCityConfig(
        name="case-study-city",
        num_stations=16,
        days=14,
        trips_per_day=100.0 * 16,
        slot_seconds=1800.0,
        short_window=48,
        long_days=3,
        school_pairs=2,
    )
    dataset = generate_city(config, seed=args.seed)
    model = STGNNDJD.from_dataset(dataset, seed=args.seed)
    print(f"Training on {dataset} ...")
    Trainer(model, dataset,
            TrainingConfig(epochs=args.epochs, seed=args.seed)).fit()

    target = int(dataset.demand.sum(axis=0).argmax())
    print(f"\nTarget station: {target} ({dataset.registry[target].name}), "
          f"the busiest in the city")

    last_day = dataset.num_days - 1
    windows = {"morning 07:00-10:00": (7.0, 10.0),
               "afternoon 15:00-18:00": (15.0, 18.0)}

    print("\n=== What a locality-prior model assumes (cf. paper Fig. 10) ===")
    times = rush_window_times(dataset, last_day, *windows["morning 07:00-10:00"])
    prior = locality_dependency_heatmap(dataset, target, times, neighbors=10)
    print(render_heatmap(prior))
    print(f"monotonicity vs distance: {prior.column_monotonicity():+.3f} "
          "(perfectly local)")

    print("\n=== What STGNN-DJD learns (cf. paper Figs. 11-12) ===")
    for label, (start, end) in windows.items():
        times = rush_window_times(dataset, last_day, start, end)
        for direction in ("from_target", "to_target"):
            heatmap = model_dependency_heatmap(
                model, dataset, target, times, neighbors=10, direction=direction
            )
            print(f"\n--- {label}, {direction} ---")
            print(render_heatmap(heatmap))
            print(f"monotonicity vs distance: "
                  f"{heatmap.column_monotonicity():+.3f} "
                  "(0 = distance-agnostic, negative = local)")


if __name__ == "__main__":
    main()

"""Legacy setup shim.

All project metadata lives in ``pyproject.toml``; this file only exists
so that ``pip install -e .`` works on minimal environments that lack the
``wheel`` package (pip falls back to the setup.py develop path).
"""

from setuptools import setup

setup()
